//! A small blocking client for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection; each call writes a request line
//! and blocks until the matching response line arrives. It exists for
//! tests, the load generator, and examples — any newline-JSON-speaking
//! client in any language works equally well.
//!
//! [`Retrier`] layers jittered exponential backoff on top: connect
//! failures, mid-request dropped connections ("server closed the
//! connection" — a replica killed between request and reply), and
//! `overloaded` rejections — the transient fault classes a well-behaved
//! client should absorb — are retried up to a bounded attempt budget, with
//! a deterministic (seeded) jitter stream and an injectable sleep function
//! so retry schedules are unit-testable without wall-clock time.
//! Re-running a dropped generation is transcript-safe because decoding is
//! deterministic for a given (model, prompt, config, seed): the retry
//! reproduces the same bytes the dead replica would have sent.

use std::io::{BufRead, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use chipalign_tensor::rng::Pcg32;

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::protocol::{
    self, ErrorCode, GenerateRequest, Generation, LoadedModel, ReplicaStatus, Request, Response,
};
use crate::ServeError;

/// A blocking connection to a running server.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on a dropped connection and
    /// [`ServeError::Protocol`] on an unparsable reply.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        protocol::write_line(&mut self.writer, req)?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        protocol::parse_line(&line)
    }

    /// Runs one generation, surfacing wire errors as [`ServeError::Remote`].
    ///
    /// # Errors
    ///
    /// Propagates transport errors and any error response from the server.
    pub fn generate(&mut self, req: GenerateRequest) -> Result<Generation, ServeError> {
        match self.request(&Request::Generate(req))? {
            Response::Generation(g) => Ok(g),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Checks liveness; returns the server's protocol version.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and unexpected replies.
    pub fn ping(&mut self) -> Result<u32, ServeError> {
        match self.request(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a metrics snapshot.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and unexpected replies.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ServeError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists loaded models and servable zoo slugs.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and unexpected replies.
    pub fn models(&mut self) -> Result<(Vec<String>, Vec<String>), ServeError> {
        match self.request(&Request::Models)? {
            Response::Models { loaded, zoo, .. } => Ok((loaded, zoo)),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists per-model detail rows (dtype, weight bytes). Empty against a
    /// server that predates the quantization surface.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and unexpected replies.
    pub fn models_detailed(&mut self) -> Result<Vec<LoadedModel>, ServeError> {
        match self.request(&Request::Models)? {
            Response::Models { models, .. } => Ok(models),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Materializes a model (hot-swap warm-up); returns its canonical key.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and any error response from the server.
    pub fn load(&mut self, model: &str) -> Result<String, ServeError> {
        let req = Request::Load {
            model: model.to_string(),
        };
        match self.request(&req)? {
            Response::Loaded { model } => Ok(model),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Evicts a model from the registry; returns whether anything was
    /// removed.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and unexpected replies.
    pub fn unload(&mut self, model: &str) -> Result<bool, ServeError> {
        let req = Request::Unload {
            model: model.to_string(),
        };
        match self.request(&req)? {
            Response::Unloaded { evicted, .. } => Ok(evicted),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists replica health states. Only `chipalign-router` answers this;
    /// a single-process server returns a `bad_request` wire error.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and any error response.
    pub fn fleet(&mut self) -> Result<Vec<ReplicaStatus>, ServeError> {
        match self.request(&Request::Fleet)? {
            Response::Fleet { replicas } => Ok(replicas),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the router to drain one replica (finish in-flight sessions,
    /// admit nothing new); returns whether the replica was known.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and any error response.
    pub fn drain(&mut self, replica: &str) -> Result<bool, ServeError> {
        let req = Request::Drain {
            replica: replica.to_string(),
        };
        match self.request(&req)? {
            Response::Drained { known, .. } => Ok(known),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::Protocol {
        detail: format!("unexpected response variant: {resp:?}"),
    }
}

/// Backoff policy for [`Retrier`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay.
    pub max_delay_ms: u64,
    /// Fraction of each delay randomized away (`0.0` = fixed delays,
    /// `0.5` = each delay uniformly in `[delay/2, delay]`). Jitter
    /// de-synchronizes client herds after an outage.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 50,
            max_delay_ms: 2_000,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based), after jitter,
    /// drawn from `rng`. Public so other backoff consumers (the router's
    /// failover loop) share one schedule implementation.
    #[must_use]
    pub fn delay(&self, attempt: u32, rng: &mut Pcg32) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(32));
        let capped = exp.min(self.max_delay_ms) as f64;
        let jitter = self.jitter.clamp(0.0, 1.0) * capped * rng.uniform_f64();
        Duration::from_millis((capped - jitter) as u64)
    }
}

/// What to sleep with — injectable so tests assert the schedule instead of
/// waiting it out.
type Sleeper = Box<dyn FnMut(Duration) + Send>;

/// A retrying front end over [`Client`] operations: bounded attempts,
/// exponential backoff, deterministic seeded jitter.
///
/// Only *transient* failures are retried: I/O errors (connect-time
/// failures and connections dropped mid-request, both reported as
/// [`ServeError::Io`]) and server `overloaded` rejections — which is also
/// how a mid-decode `PoolSaturated` admission refusal arrives on the wire,
/// so KV-pool pressure backs off exactly like connect-time overload. Every
/// retry reconnects from scratch, so a replica that died holding our
/// socket is simply replaced. A generation that failed any other way (bad
/// request, deadline, internal error) is returned immediately: those are
/// verdicts about the request itself, not the transport, and
/// `deadline_exceeded` in particular means the time budget is already
/// spent — retrying would burn compute on an answer the caller no longer
/// wants.
///
/// Backoff depth follows the *failure streak*, not the per-call attempt
/// index: consecutive failing calls keep escalating the delay (a saturated
/// fleet should not be hammered at `base_delay` again just because the
/// attempt budget rolled over), and any successful response resets the
/// streak — a long-lived session that failed over once must not inherit
/// stale multi-second backoff for the rest of its life.
pub struct Retrier {
    policy: RetryPolicy,
    rng: Pcg32,
    sleeper: Sleeper,
    metrics: Option<Arc<Metrics>>,
    /// Consecutive retryable failures observed across calls; indexes into
    /// [`RetryPolicy::delay`] and is cleared by any successful operation.
    streak: u32,
}

impl std::fmt::Debug for Retrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Retrier({:?})", self.policy)
    }
}

impl Retrier {
    /// Creates a retrier; `seed` drives the jitter stream, so a given
    /// (policy, seed) pair always produces the same backoff schedule.
    #[must_use]
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Retrier {
            policy,
            rng: Pcg32::seed(seed).derive(0x5e77),
            sleeper: Box::new(std::thread::sleep),
            metrics: None,
            streak: 0,
        }
    }

    /// Replaces the sleep function (tests inject a recorder instead of
    /// blocking).
    #[must_use]
    pub fn with_sleeper(mut self, sleeper: impl FnMut(Duration) + Send + 'static) -> Self {
        self.sleeper = Box::new(sleeper);
        self
    }

    /// Attaches a metrics core; each retry (not first attempts) increments
    /// `retries_attempted`.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Connects with retry on I/O failure, under the retrier's policy.
    ///
    /// # Errors
    ///
    /// Returns the final attempt's error once the attempt budget is spent.
    pub fn connect<A: ToSocketAddrs>(&mut self, addr: A) -> Result<Client, ServeError> {
        let policy = self.policy.clone();
        self.connect_with(addr, &policy)
    }

    /// [`Retrier::connect`] with a per-call policy override.
    ///
    /// # Errors
    ///
    /// Returns the final attempt's error once the attempt budget is spent.
    pub fn connect_with<A: ToSocketAddrs>(
        &mut self,
        addr: A,
        policy: &RetryPolicy,
    ) -> Result<Client, ServeError> {
        self.run(policy, retry_connect_errors, |_| Client::connect(&addr))
    }

    /// Runs one generation over a fresh connection, retrying connect
    /// failures and `overloaded` rejections under the retrier's policy.
    /// Each attempt carries its 1-based index minus one in
    /// `retry_attempt`, so the server can count retry traffic.
    ///
    /// # Errors
    ///
    /// Returns the final attempt's error once the attempt budget is spent;
    /// non-transient errors return immediately.
    pub fn generate<A: ToSocketAddrs>(
        &mut self,
        addr: A,
        req: &GenerateRequest,
    ) -> Result<Generation, ServeError> {
        let policy = self.policy.clone();
        self.generate_with(addr, req, &policy)
    }

    /// [`Retrier::generate`] with a per-call policy override.
    ///
    /// # Errors
    ///
    /// Returns the final attempt's error once the attempt budget is spent;
    /// non-transient errors return immediately.
    pub fn generate_with<A: ToSocketAddrs>(
        &mut self,
        addr: A,
        req: &GenerateRequest,
        policy: &RetryPolicy,
    ) -> Result<Generation, ServeError> {
        self.run(policy, retry_generate_errors, |attempt| {
            let mut client = Client::connect(&addr)?;
            let mut req = req.clone();
            req.retry_attempt = attempt;
            client.generate(req)
        })
    }

    /// The retry loop shared by every operation: run `op`, consult
    /// `retry_on` for transience, back off, repeat within the attempt
    /// budget. The attempt budget is per call; the backoff *depth* follows
    /// the cross-call failure streak, which any success resets.
    fn run<T>(
        &mut self,
        policy: &RetryPolicy,
        retry_on: fn(&ServeError) -> bool,
        mut op: impl FnMut(u32) -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => {
                    self.streak = 0;
                    return Ok(v);
                }
                Err(e) if attempt + 1 < attempts && retry_on(&e) => {
                    attempt += 1;
                    self.streak = self.streak.saturating_add(1);
                    if let Some(m) = &self.metrics {
                        m.on_retry_attempted();
                    }
                    (self.sleeper)(policy.delay(self.streak, &mut self.rng));
                }
                Err(e) => {
                    // A budget-exhausted transient failure still deepens
                    // the streak: the next call starts from where this one
                    // left off instead of hammering at base delay.
                    if retry_on(&e) {
                        self.streak = self.streak.saturating_add(1);
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// Connect path: any I/O error is worth retrying (server restarting, SYN
/// backlog full, transient network trouble).
fn retry_connect_errors(e: &ServeError) -> bool {
    matches!(e, ServeError::Io(_))
}

/// Generate path: retry I/O trouble — connect failures *and* connections
/// dropped mid-request ("server closed the connection"), so a replica kill
/// between request and reply is survivable — plus explicit `overloaded`
/// rejections. Deterministic decoding makes the mid-request case safe: a
/// re-run on a fresh connection produces byte-identical output, so the
/// worst cost of a retry is duplicated compute, never a divergent
/// transcript. Structured verdicts (`bad_request`, `deadline_exceeded`,
/// `internal`, ...) are never retried here.
fn retry_generate_errors(e: &ServeError) -> bool {
    match e {
        ServeError::Io(_) => true,
        ServeError::Remote(w) => w.code == ErrorCode::Overloaded,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A sleeper that records every requested delay instead of blocking.
    fn recording_sleeper() -> (Arc<Mutex<Vec<Duration>>>, Sleeper) {
        let log: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let writer = Arc::clone(&log);
        let sleeper = Box::new(move |d: Duration| {
            writer.lock().expect("sleep log").push(d);
        });
        (log, sleeper)
    }

    fn overloaded() -> ServeError {
        ServeError::Remote(crate::protocol::WireError {
            code: ErrorCode::Overloaded,
            detail: "full".into(),
        })
    }

    fn policy(max_attempts: u32, jitter: f64) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay_ms: 100,
            max_delay_ms: 10_000,
            jitter,
        }
    }

    #[test]
    fn retries_until_success_with_exponential_backoff() {
        let (log, sleeper) = recording_sleeper();
        let mut retrier = Retrier::new(policy(5, 0.0), 1);
        retrier.sleeper = sleeper;
        let mut failures_left = 3;
        let result = retrier.run(&policy(5, 0.0), retry_generate_errors, |attempt| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(overloaded())
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result.expect("succeeds on 4th attempt"), 3);
        let delays: Vec<u64> = log
            .lock()
            .expect("log")
            .iter()
            .map(|d| d.as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![100, 200, 400], "doubling, no jitter");
    }

    #[test]
    fn non_transient_errors_fail_immediately() {
        let (log, sleeper) = recording_sleeper();
        let mut retrier = Retrier::new(policy(5, 0.0), 2);
        retrier.sleeper = sleeper;
        let mut calls = 0;
        let result: Result<(), _> = retrier.run(&policy(5, 0.0), retry_generate_errors, |_| {
            calls += 1;
            Err(ServeError::BadRequest {
                detail: "bad".into(),
            })
        });
        assert!(matches!(result, Err(ServeError::BadRequest { .. })));
        assert_eq!(calls, 1, "no retry on a permanent error");
        assert!(log.lock().expect("log").is_empty());
    }

    #[test]
    fn attempt_budget_bounds_retries_and_returns_last_error() {
        let (log, sleeper) = recording_sleeper();
        let mut retrier = Retrier::new(policy(3, 0.0), 3);
        retrier.sleeper = sleeper;
        let mut calls = 0u32;
        let result: Result<(), _> = retrier.run(&policy(3, 0.0), retry_generate_errors, |_| {
            calls += 1;
            Err(overloaded())
        });
        assert!(matches!(result, Err(ServeError::Remote(_))));
        assert_eq!(calls, 3, "max_attempts includes the first try");
        assert_eq!(log.lock().expect("log").len(), 2, "sleeps between tries");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let schedule = |seed: u64| -> Vec<Duration> {
            let (log, sleeper) = recording_sleeper();
            let mut retrier = Retrier::new(policy(4, 0.5), seed);
            retrier.sleeper = sleeper;
            let _ = retrier.run(&policy(4, 0.5), retry_generate_errors, |_| {
                Err::<(), _>(overloaded())
            });
            let out = log.lock().expect("log").clone();
            out
        };
        let a = schedule(7);
        assert_eq!(a, schedule(7), "same seed, same schedule");
        assert_ne!(a, schedule(8), "different seed, different jitter");
        for (i, d) in a.iter().enumerate() {
            let full = 100u64 << i;
            let ms = d.as_millis() as u64;
            assert!(
                ms > full / 2 - 1 && ms <= full,
                "delay {i} = {ms}ms outside jitter window ({full}ms nominal)"
            );
        }
    }

    #[test]
    fn delays_cap_at_max_delay() {
        let pol = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 100,
            max_delay_ms: 300,
            jitter: 0.0,
        };
        let mut rng = Pcg32::seed(1);
        assert_eq!(pol.delay(1, &mut rng).as_millis(), 100);
        assert_eq!(pol.delay(2, &mut rng).as_millis(), 200);
        assert_eq!(pol.delay(3, &mut rng).as_millis(), 300, "caps");
        assert_eq!(pol.delay(9, &mut rng).as_millis(), 300, "stays capped");
    }

    #[test]
    fn back_to_back_failing_calls_escalate_backoff_across_calls() {
        // A saturated fleet rejects call after call: the second call must
        // pick up the backoff where the first left off (including the
        // budget-exhausting failure), not restart at base delay.
        let (log, sleeper) = recording_sleeper();
        let mut retrier = Retrier::new(policy(3, 0.0), 5);
        retrier.sleeper = sleeper;
        for _ in 0..2 {
            let result: Result<(), _> =
                retrier.run(
                    &policy(3, 0.0),
                    retry_generate_errors,
                    |_| Err(overloaded()),
                );
            assert!(matches!(result, Err(ServeError::Remote(_))));
        }
        let delays: Vec<u64> = log
            .lock()
            .expect("log")
            .iter()
            .map(|d| d.as_millis() as u64)
            .collect();
        assert_eq!(
            delays,
            vec![100, 200, 800, 1_600],
            "call 2 continues the escalation (streak 4 and 5), no restart"
        );
    }

    #[test]
    fn successful_response_resets_the_backoff_streak() {
        // One failed-over call must not leave a long-lived session paying
        // multi-second delays forever: any success clears the streak.
        let (log, sleeper) = recording_sleeper();
        let mut retrier = Retrier::new(policy(3, 0.0), 6);
        retrier.sleeper = sleeper;
        let fail_out = |r: &mut Retrier| {
            let result: Result<(), _> =
                r.run(
                    &policy(3, 0.0),
                    retry_generate_errors,
                    |_| Err(overloaded()),
                );
            assert!(result.is_err());
        };
        fail_out(&mut retrier); // streak climbs to 3
        let ok = retrier.run(&policy(3, 0.0), retry_generate_errors, |_| Ok(42));
        assert_eq!(ok.expect("succeeds"), 42);
        fail_out(&mut retrier); // must restart from base delay
        let delays: Vec<u64> = log
            .lock()
            .expect("log")
            .iter()
            .map(|d| d.as_millis() as u64)
            .collect();
        assert_eq!(
            delays,
            vec![100, 200, 100, 200],
            "the success between the failing calls reset the streak"
        );
    }

    #[test]
    fn retries_are_counted_in_metrics() {
        let metrics = Arc::new(Metrics::new());
        let (_log, sleeper) = recording_sleeper();
        let mut retrier = Retrier::new(policy(3, 0.0), 4).with_metrics(Arc::clone(&metrics));
        retrier.sleeper = sleeper;
        let _ = retrier.run(&policy(3, 0.0), retry_generate_errors, |_| {
            Err::<(), _>(overloaded())
        });
        assert_eq!(metrics.snapshot().retries_attempted, 2);
    }

    use crate::protocol::{FinishReason, WireError};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn canned_generation() -> Generation {
        Generation {
            model: "fake".to_string(),
            text: "ok".to_string(),
            tokens: 2,
            prompt_tokens: 3,
            finish: FinishReason::Eos,
            queue_ms: 0,
            latency_ms: 1,
        }
    }

    #[test]
    fn mid_request_dropped_connection_is_reconnected_and_retried() {
        // A fake replica that reads the request and then slams the
        // connection shut — exactly what a killed replica looks like from
        // the client side ("server closed the connection"). The second
        // connection answers. The Retrier must reconnect and succeed, and
        // the replayed request must carry retry_attempt = 1 so the server
        // can account for retry traffic.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || -> u32 {
            // Connection 1: read the request, drop without replying.
            let (stream, _) = listener.accept().expect("accept 1");
            let mut reader = std::io::BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).expect("read 1");
            drop(reader);
            // Connection 2: answer properly.
            let (stream, _) = listener.accept().expect("accept 2");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = std::io::BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).expect("read 2");
            let attempt = match crate::protocol::parse_line::<Request>(&line).expect("parse") {
                Request::Generate(g) => g.retry_attempt,
                other => panic!("wrong request: {other:?}"),
            };
            crate::protocol::write_line(&mut writer, &Response::Generation(canned_generation()))
                .expect("write");
            attempt
        });

        let (log, sleeper) = recording_sleeper();
        let mut retrier = Retrier::new(policy(4, 0.0), 11);
        retrier.sleeper = sleeper;
        let req = GenerateRequest::greedy("fake", "Q:x;A:", 4);
        let generation = retrier.generate(addr, &req).expect("retry succeeds");
        assert_eq!(generation.text, "ok");
        assert_eq!(
            server.join().expect("server thread"),
            1,
            "the replayed request must be flagged as attempt 1"
        );
        assert_eq!(log.lock().expect("log").len(), 1, "one backoff sleep");
    }

    /// A fake replica answering every connection's first request with the
    /// given wire error, counting connections accepted.
    fn error_replica(code: ErrorCode) -> (std::net::SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let accepted = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepted);
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                counter.fetch_add(1, Ordering::SeqCst);
                let mut writer = match stream.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                let mut reader = std::io::BufReader::new(stream);
                let mut line = String::new();
                if reader.read_line(&mut line).is_ok() {
                    let _ = crate::protocol::write_line(
                        &mut writer,
                        &Response::Error(WireError {
                            code,
                            detail: "verdict".into(),
                        }),
                    );
                }
            }
        });
        (addr, accepted)
    }

    #[test]
    fn bad_request_and_deadline_exceeded_are_never_retried() {
        // Structured verdicts about the request itself must come back after
        // exactly one connection, with no backoff sleeps — even though the
        // Retrier would happily retry transport faults against the same
        // address.
        for code in [ErrorCode::BadRequest, ErrorCode::DeadlineExceeded] {
            let (addr, accepted) = error_replica(code);
            let (log, sleeper) = recording_sleeper();
            let mut retrier = Retrier::new(policy(5, 0.0), 13);
            retrier.sleeper = sleeper;
            let req = GenerateRequest::greedy("fake", "Q:x;A:", 4);
            let result = retrier.generate(addr, &req);
            match result {
                Err(ServeError::Remote(w)) => assert_eq!(w.code, code),
                other => panic!("expected the verdict back, got {other:?}"),
            }
            // The reply arrived on the first connection; give any stray
            // (incorrect) retry a moment to show up before asserting.
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(
                accepted.load(Ordering::SeqCst),
                1,
                "{code:?} must not trigger a reconnect"
            );
            assert!(
                log.lock().expect("log").is_empty(),
                "{code:?} must not trigger a backoff sleep"
            );
        }
    }
}

//! A small blocking client for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection; each call writes a request line
//! and blocks until the matching response line arrives. It exists for
//! tests, the load generator, and examples — any newline-JSON-speaking
//! client in any language works equally well.

use std::io::{BufRead, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use crate::metrics::MetricsSnapshot;
use crate::protocol::{self, GenerateRequest, Generation, Request, Response};
use crate::ServeError;

/// A blocking connection to a running server.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the connection cannot be established.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] on a dropped connection and
    /// [`ServeError::Protocol`] on an unparsable reply.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        protocol::write_line(&mut self.writer, req)?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        protocol::parse_line(&line)
    }

    /// Runs one generation, surfacing wire errors as [`ServeError::Remote`].
    ///
    /// # Errors
    ///
    /// Propagates transport errors and any error response from the server.
    pub fn generate(&mut self, req: GenerateRequest) -> Result<Generation, ServeError> {
        match self.request(&Request::Generate(req))? {
            Response::Generation(g) => Ok(g),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Checks liveness; returns the server's protocol version.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and unexpected replies.
    pub fn ping(&mut self) -> Result<u32, ServeError> {
        match self.request(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a metrics snapshot.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and unexpected replies.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ServeError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists loaded models and servable zoo slugs.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and unexpected replies.
    pub fn models(&mut self) -> Result<(Vec<String>, Vec<String>), ServeError> {
        match self.request(&Request::Models)? {
            Response::Models { loaded, zoo } => Ok((loaded, zoo)),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Materializes a model (hot-swap warm-up); returns its canonical key.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and any error response from the server.
    pub fn load(&mut self, model: &str) -> Result<String, ServeError> {
        let req = Request::Load {
            model: model.to_string(),
        };
        match self.request(&req)? {
            Response::Loaded { model } => Ok(model),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }

    /// Evicts a model from the registry; returns whether anything was
    /// removed.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and unexpected replies.
    pub fn unload(&mut self, model: &str) -> Result<bool, ServeError> {
        let req = Request::Unload {
            model: model.to_string(),
        };
        match self.request(&req)? {
            Response::Unloaded { evicted, .. } => Ok(evicted),
            Response::Error(w) => Err(ServeError::Remote(w)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> ServeError {
    ServeError::Protocol {
        detail: format!("unexpected response variant: {resp:?}"),
    }
}

use std::error::Error;
use std::fmt;

use chipalign_merge::MergeError;
use chipalign_model::ModelError;
use chipalign_nn::NnError;
use chipalign_pipeline::PipelineError;

use crate::protocol::{ErrorCode, WireError};

/// Errors produced by the serving subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A checkpoint operation failed.
    Model(ModelError),
    /// A merge failed while materializing a requested λ.
    Merge(MergeError),
    /// The model zoo failed to produce an ingredient model.
    Pipeline(PipelineError),
    /// Socket or file trouble.
    Io(std::io::Error),
    /// A wire message could not be parsed or framed.
    Protocol {
        /// What was wrong with the message.
        detail: String,
    },
    /// The requested model spec names nothing the registry can serve.
    UnknownModel {
        /// The spec string as received.
        spec: String,
    },
    /// Admission control rejected the request: the session queue is full.
    Overloaded {
        /// Sessions currently admitted (queued + running).
        active: usize,
        /// The configured admission bound.
        capacity: usize,
    },
    /// Admission control rejected the request: the paged KV pool cannot
    /// back the session's prompt window, even after evicting reusable
    /// prefix-cache snapshots. Maps to the `overloaded` wire code so
    /// clients back off and retry like any other transient overload.
    PoolSaturated {
        /// Blocks the session's prompt window needs.
        needed: usize,
        /// Blocks still free after eviction.
        free: usize,
    },
    /// The server is draining and no longer admits new sessions.
    ShuttingDown,
    /// The request's deadline expired before the session finished.
    DeadlineExceeded {
        /// How long the session had been in the system when it expired.
        waited_ms: u64,
    },
    /// The request was structurally valid JSON but semantically unusable.
    BadRequest {
        /// What was wrong with it.
        detail: String,
    },
    /// A decode slice panicked; the session was cancelled but the worker
    /// pool kept serving.
    WorkerPanic {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// The session watchdog cancelled a session for making no token
    /// progress.
    Stalled {
        /// Consecutive zero-progress scheduler slices observed.
        slices: u64,
    },
    /// An internal invariant failed; the request cannot be served but the
    /// server is still healthy.
    Internal {
        /// What went wrong.
        detail: String,
    },
    /// The server reported an error over the wire (client side).
    Remote(WireError),
}

impl ServeError {
    /// The wire-protocol error code this error maps to.
    #[must_use]
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::Protocol { .. } | ServeError::BadRequest { .. } => ErrorCode::BadRequest,
            ServeError::UnknownModel { .. } => ErrorCode::UnknownModel,
            ServeError::Overloaded { .. } | ServeError::PoolSaturated { .. } => {
                ErrorCode::Overloaded
            }
            // Pool exhaustion mid-decode is just as transient as admission
            // overload: blocks free up when other sessions finish.
            ServeError::Nn(NnError::PoolExhausted { .. }) => ErrorCode::Overloaded,
            ServeError::ShuttingDown => ErrorCode::ShuttingDown,
            ServeError::DeadlineExceeded { .. } | ServeError::Stalled { .. } => {
                ErrorCode::DeadlineExceeded
            }
            ServeError::Remote(w) => w.code,
            ServeError::Nn(NnError::BadConfig { .. })
            | ServeError::Nn(NnError::BadSequence { .. })
            | ServeError::Nn(NnError::BadToken { .. }) => ErrorCode::BadRequest,
            _ => ErrorCode::Internal,
        }
    }

    /// Renders this error as a wire-protocol error payload.
    #[must_use]
    pub fn to_wire(&self) -> WireError {
        match self {
            ServeError::Remote(w) => w.clone(),
            other => WireError {
                code: other.code(),
                detail: other.to_string(),
            },
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Nn(e) => write!(f, "nn error: {e}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Merge(e) => write!(f, "merge error: {e}"),
            ServeError::Pipeline(e) => write!(f, "zoo error: {e}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            ServeError::UnknownModel { spec } => write!(f, "unknown model spec {spec:?}"),
            ServeError::Overloaded { active, capacity } => {
                write!(f, "overloaded: {active} of {capacity} sessions in flight")
            }
            ServeError::PoolSaturated { needed, free } => {
                write!(
                    f,
                    "kv pool saturated: session needs {needed} blocks, {free} free"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DeadlineExceeded { waited_ms } => {
                write!(f, "deadline exceeded after {waited_ms} ms")
            }
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::WorkerPanic { detail } => {
                write!(f, "session cancelled: decode slice panicked: {detail}")
            }
            ServeError::Stalled { slices } => write!(
                f,
                "session stalled: no token progress for {slices} scheduler slices"
            ),
            ServeError::Internal { detail } => write!(f, "internal error: {detail}"),
            ServeError::Remote(w) => write!(f, "server error [{:?}]: {}", w.code, w.detail),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Nn(e) => Some(e),
            ServeError::Model(e) => Some(e),
            ServeError::Merge(e) => Some(e),
            ServeError::Pipeline(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Nn(e)
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

impl From<MergeError> for ServeError {
    fn from(e: MergeError) -> Self {
        ServeError::Merge(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_codes() {
        let e = ServeError::Overloaded {
            active: 8,
            capacity: 8,
        };
        assert!(e.to_string().contains("overloaded"));
        assert_eq!(e.code(), ErrorCode::Overloaded);
        assert_eq!(ServeError::ShuttingDown.code(), ErrorCode::ShuttingDown);
        let pool = ServeError::PoolSaturated { needed: 9, free: 2 };
        assert_eq!(
            pool.code(),
            ErrorCode::Overloaded,
            "pool saturation must trigger client back-off"
        );
        assert!(pool.to_string().contains("9 blocks"));
        let mid_decode = ServeError::Nn(NnError::PoolExhausted {
            in_use: 64,
            capacity: 64,
        });
        assert_eq!(mid_decode.code(), ErrorCode::Overloaded);
        let bad = ServeError::BadRequest {
            detail: "empty prompt".into(),
        };
        assert_eq!(bad.to_wire().code, ErrorCode::BadRequest);
        assert!(bad.to_wire().detail.contains("empty prompt"));
    }

    #[test]
    fn fault_variants_map_to_structured_codes() {
        let panic = ServeError::WorkerPanic {
            detail: "injected".into(),
        };
        assert_eq!(panic.code(), ErrorCode::Internal);
        assert!(panic.to_string().contains("panicked"));
        let stalled = ServeError::Stalled { slices: 3 };
        assert_eq!(stalled.code(), ErrorCode::DeadlineExceeded);
        assert!(stalled.to_string().contains("3 scheduler slices"));
        let internal = ServeError::Internal {
            detail: "invariant".into(),
        };
        assert_eq!(internal.code(), ErrorCode::Internal);
    }

    #[test]
    fn sources_preserved() {
        let e: ServeError = NnError::BadSequence {
            detail: "empty".into(),
        }
        .into();
        assert!(e.source().is_some());
        assert_eq!(e.code(), ErrorCode::BadRequest);
    }
}

//! Deterministic fault injection for chaos testing the serving stack.
//!
//! Compiled in only with the `fault-inject` cargo feature; production
//! builds carry zero injection overhead because every call site is cfg'd
//! out. The registry is a process-global *plan*: a chaos test arms one or
//! more [`Site`]s with a [`Trigger`], runs traffic, and asserts the server
//! degraded exactly as designed — structured errors for the poisoned
//! sessions, byte-identical output for healthy ones, clean drain at the
//! end.
//!
//! Determinism is the point. Probabilistic triggers draw from a
//! [`Pcg32`](chipalign_tensor::rng::Pcg32) stream derived from the scope
//! seed, so a failing chaos run replays bit-for-bit from its seed — no
//! wall-clock, no thread-id entropy.
//!
//! # Usage
//!
//! ```ignore
//! let _scope = faults::scope(42); // exclusive; resets the plan on drop
//! faults::arm(Site::WorkerPanic, Some("poison-model"), Trigger::Once(1));
//! // ... drive the server; the first decode slice for `poison-model`
//! // panics, everything else proceeds normally ...
//! ```
//!
//! Scopes serialize chaos tests through a global lock, so `cargo test`
//! can run the chaos suite with its default parallel harness.
//!
//! # Cross-thread tag isolation
//!
//! The registry is process-global, and one scope's plan is shared by every
//! thread in the process — which is exactly what fleet chaos tests need:
//! they spawn whole server replicas as threads inside a single scope and
//! must be able to kill *one* replica without wobbling the others. The
//! contract is:
//!
//! 1. **Scopes are exclusive.** Only one [`FaultScope`] exists at a time;
//!    a second `scope()` call (from any thread) blocks until the first is
//!    dropped. A scope's plan is therefore never mutated by another test.
//! 2. **Rules with distinct tags are independent.** Each rule keeps its
//!    own hit counter and PCG stream, and a [`should_fire`] call only
//!    advances rules whose site matches *and* whose tag filter matches the
//!    call's tag exactly. Threads hammering different tags concurrently
//!    can never consume each other's hits, so per-tag [`Trigger::Once`] /
//!    [`Trigger::From`] positions hold regardless of thread interleaving.
//! 3. **Untagged rules (`tag: None`) see every matching-site hit** from
//!    every thread, so their hit order — and thus `Once`/`From` firing
//!    position — depends on thread scheduling. Multi-threaded tests that
//!    need deterministic positions must use tagged rules (the fleet suite
//!    tags sessions `"<instance>/<model>"` so each replica is its own
//!    blast radius) or constrain hit order structurally (single worker).
//!
//! Guarantee 2 is load-bearing for the fleet chaos suite and pinned by
//! `concurrent_threads_with_distinct_tags_fire_independently` below.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use chipalign_tensor::rng::Pcg32;

/// A code location where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Panic inside a decode slice (exercises `catch_unwind` isolation).
    WorkerPanic,
    /// Panic in the worker loop *outside* the slice guard, killing the
    /// worker thread outright (exercises respawn).
    WorkerDeath,
    /// Make a scheduled slice produce zero tokens (exercises the
    /// stall watchdog).
    SessionStall,
    /// Fail a registry model materialization with an injected error.
    RegistryResolve,
    /// Poison a freshly merged checkpoint with a NaN before validation
    /// (exercises non-finite rejection on the merge path).
    MergePoison,
    /// Truncate a checkpoint persist mid-write, bypassing the atomic
    /// rename (exercises corrupt-file recovery on reload).
    TornWrite,
    /// Abandon a submitted session from the server side as if the client
    /// hung up (exercises orphaned-session accounting).
    ClientDisconnect,
    /// Panic inside the speculative draft phase (exercises the
    /// draft-isolation guarantee: speculation dies, the session survives
    /// on plain decoding with unchanged output).
    SpecDraft,
}

/// When an armed [`Site`] actually fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Never fires (explicitly disarmed).
    Never,
    /// Fires on every hit.
    Always,
    /// Fires only on the `n`-th hit (1-based).
    Once(u64),
    /// Fires on the `n`-th hit (1-based) and every hit after it.
    From(u64),
    /// Fires independently with probability `p` per hit, drawn from the
    /// scope's seeded PCG stream.
    Chance(f32),
}

/// One armed rule: a site, an optional tag filter, and a trigger.
#[derive(Debug)]
struct Rule {
    site: Site,
    /// `None` matches any tag; `Some(t)` only fires for hits tagged `t`
    /// (tags are model keys or session tags, chosen per site).
    tag: Option<String>,
    trigger: Trigger,
    /// Hits observed so far (matched by site+tag, whether or not fired).
    hits: u64,
    rng: Pcg32,
}

#[derive(Debug, Default)]
struct Plan {
    rules: Vec<Rule>,
    seed: u64,
}

fn plan() -> MutexGuard<'static, Plan> {
    static PLAN: OnceLock<Mutex<Plan>> = OnceLock::new();
    PLAN.get_or_init(|| Mutex::new(Plan::default()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Exclusive handle over the global fault plan; dropping it disarms
/// everything. Obtain via [`scope`].
pub struct FaultScope {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        let mut p = plan();
        p.rules.clear();
        p.seed = 0;
    }
}

/// Opens an exclusive fault-injection scope seeded with `seed`.
///
/// Blocks until any other scope (e.g. a concurrently running chaos test)
/// is dropped, then resets the plan. All [`Trigger::Chance`] draws inside
/// the scope derive from `seed`, so runs replay deterministically.
#[must_use = "the scope disarms all faults when dropped"]
pub fn scope(seed: u64) -> FaultScope {
    static SCOPE: Mutex<()> = Mutex::new(());
    let guard = SCOPE.lock().unwrap_or_else(PoisonError::into_inner);
    let mut p = plan();
    p.rules.clear();
    p.seed = seed;
    drop(p);
    FaultScope { _guard: guard }
}

/// Arms `site` with `trigger`, firing only for hits tagged `tag`
/// (or all hits when `tag` is `None`).
///
/// Multiple rules may be armed at once; each keeps an independent hit
/// counter and PCG stream (derived from the scope seed and rule index).
pub fn arm(site: Site, tag: Option<&str>, trigger: Trigger) {
    let mut p = plan();
    let idx = p.rules.len() as u64;
    let rng = Pcg32::seed(p.seed).derive(idx);
    p.rules.push(Rule {
        site,
        tag: tag.map(str::to_string),
        trigger,
        hits: 0,
        rng,
    });
}

/// Reports whether an armed fault at `site` fires for this hit.
///
/// Every production injection site calls this (under `cfg(feature =
/// "fault-inject")`) with its site and the tag of the work item at hand.
/// Each matching rule's hit counter advances exactly once per call, so
/// [`Trigger::Once`] semantics are stable regardless of thread
/// interleaving *given* a deterministic hit order (which the chaos tests
/// arrange via single-worker schedulers or per-tag rules).
#[must_use]
pub fn should_fire(site: Site, tag: &str) -> bool {
    let mut p = plan();
    let mut fire = false;
    for rule in &mut p.rules {
        if rule.site != site {
            continue;
        }
        if let Some(t) = &rule.tag {
            if t != tag {
                continue;
            }
        }
        rule.hits += 1;
        let hit = rule.hits;
        fire |= match rule.trigger {
            Trigger::Never => false,
            Trigger::Always => true,
            Trigger::Once(n) => hit == n,
            Trigger::From(n) => hit >= n,
            Trigger::Chance(prob) => rule.rng.chance(prob),
        };
    }
    fire
}

/// Number of hits the first rule armed for `site` has observed (for test
/// assertions about how often an injection point was reached).
#[must_use]
pub fn hits(site: Site) -> u64 {
    plan()
        .rules
        .iter()
        .find(|r| r.site == site)
        .map_or(0, |r| r.hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fire() {
        let _scope = scope(1);
        assert!(!should_fire(Site::WorkerPanic, "any"));
        assert!(!should_fire(Site::TornWrite, "any"));
    }

    #[test]
    fn once_fires_exactly_on_nth_hit() {
        let _scope = scope(2);
        arm(Site::WorkerPanic, None, Trigger::Once(3));
        assert!(!should_fire(Site::WorkerPanic, "a"));
        assert!(!should_fire(Site::WorkerPanic, "a"));
        assert!(should_fire(Site::WorkerPanic, "a"));
        assert!(!should_fire(Site::WorkerPanic, "a"));
        assert_eq!(hits(Site::WorkerPanic), 4);
    }

    #[test]
    fn tag_filter_scopes_the_blast_radius() {
        let _scope = scope(3);
        arm(Site::SessionStall, Some("poison"), Trigger::Always);
        assert!(!should_fire(Site::SessionStall, "healthy"));
        assert!(should_fire(Site::SessionStall, "poison"));
        assert!(!should_fire(Site::SessionStall, "healthy"));
    }

    #[test]
    fn from_fires_nth_hit_onward() {
        let _scope = scope(4);
        arm(Site::RegistryResolve, None, Trigger::From(2));
        assert!(!should_fire(Site::RegistryResolve, "m"));
        assert!(should_fire(Site::RegistryResolve, "m"));
        assert!(should_fire(Site::RegistryResolve, "m"));
    }

    #[test]
    fn chance_replays_deterministically_from_seed() {
        let draws = |seed: u64| -> Vec<bool> {
            let _scope = scope(seed);
            arm(Site::ClientDisconnect, None, Trigger::Chance(0.5));
            (0..32)
                .map(|_| should_fire(Site::ClientDisconnect, "x"))
                .collect()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8), "different seeds must diverge");
    }

    #[test]
    fn scope_drop_disarms_everything() {
        {
            let _scope = scope(5);
            arm(Site::WorkerDeath, None, Trigger::Always);
            assert!(should_fire(Site::WorkerDeath, "w"));
        }
        let _scope = scope(6);
        assert!(!should_fire(Site::WorkerDeath, "w"));
    }

    #[test]
    fn multiple_rules_keep_independent_counters() {
        let _scope = scope(9);
        arm(Site::WorkerPanic, Some("a"), Trigger::Once(1));
        arm(Site::WorkerPanic, Some("b"), Trigger::Once(2));
        assert!(should_fire(Site::WorkerPanic, "a"));
        assert!(!should_fire(Site::WorkerPanic, "b"));
        assert!(should_fire(Site::WorkerPanic, "b"));
    }

    #[test]
    fn concurrent_threads_with_distinct_tags_fire_independently() {
        // The fleet chaos suite's load-bearing guarantee: replicas running
        // as threads inside one scope, each hammering its own tag, must
        // observe their Once positions exactly — no thread interleaving
        // can make one replica's hits consume another's trigger.
        use std::sync::Barrier;

        let _scope = scope(10);
        arm(Site::WorkerDeath, Some("r0/model"), Trigger::Once(3));
        arm(Site::WorkerDeath, Some("r1/model"), Trigger::Once(5));

        let barrier = std::sync::Arc::new(Barrier::new(2));
        let threads: Vec<_> = [("r0/model", 3u64), ("r1/model", 5u64)]
            .into_iter()
            .map(|(tag, expect_at)| {
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let fired: Vec<u64> = (1u64..=8)
                        .filter(|_| should_fire(Site::WorkerDeath, tag))
                        .collect();
                    (tag, expect_at, fired)
                })
            })
            .collect();
        for t in threads {
            let (tag, expect_at, fired) = t.join().expect("tag thread");
            assert_eq!(
                fired,
                vec![expect_at],
                "{tag} must fire exactly once at its own hit position"
            );
        }
        // An unrelated tag consumed nothing from either rule.
        assert!(!should_fire(Site::WorkerDeath, "r2/model"));
    }

    #[test]
    fn second_scope_blocks_until_first_drops() {
        // One-directional safety check on scope exclusivity: a thread
        // asking for a scope while one is held must not get it until the
        // holder drops. (The FaultScope guard is !Send, so exclusivity is
        // over scopes, not threads — a second thread simply waits.)
        use std::sync::atomic::{AtomicBool, Ordering};

        let first = scope(11);
        arm(Site::SessionStall, Some("held"), Trigger::Always);
        let entered = std::sync::Arc::new(AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&entered);
        let waiter = std::thread::spawn(move || {
            let _inner = scope(12);
            flag.store(true, Ordering::SeqCst);
            // The fresh scope reset the plan: the first scope's rule is
            // gone by the time we get here.
            assert!(!should_fire(Site::SessionStall, "held"));
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(
            !entered.load(Ordering::SeqCst),
            "the second scope must wait for the first"
        );
        assert!(should_fire(Site::SessionStall, "held"));
        drop(first);
        waiter.join().expect("waiter");
        assert!(entered.load(Ordering::SeqCst));
    }
}

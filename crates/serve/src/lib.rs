//! chipalign-serve: a continuous-batching inference server for ChipAlign
//! models with hot-swappable merged checkpoints.
//!
//! The paper's deliverable is a merged model; this crate is the missing
//! last mile — actually *serving* that model, and any other point on the
//! geodesic, from one process:
//!
//! - **Model registry** ([`registry::ModelRegistry`]): resolves model
//!   specs — zoo slugs (`instruct-qwen`), on-demand geodesic merges
//!   (`merge:eda-qwen+instruct-qwen@0.6`), or checkpoint files
//!   (`file:model.calt`) — and caches each materialized model by canonical
//!   key. Rolling out a new λ is a `load` request, not a restart.
//! - **Session scheduler** ([`scheduler::Scheduler`]): continuous batching
//!   over a worker pool. Each session owns its KV cache via
//!   [`chipalign_nn::StepDecoder`]; workers decode short slices and rotate
//!   sessions round-robin, so long generations never starve short ones.
//!   Long *prompts* don't starve anyone either: prefill runs in bounded
//!   chunks interleaved with other sessions' decode slices, and repeated
//!   prompt scaffolding is served from a shared-prefix KV cache
//!   ([`prefix::PrefixCache`]) instead of being re-prefilled. Admission
//!   control bounds sessions in flight and rejects the rest with a
//!   structured `overloaded` error; per-request deadlines are enforced at
//!   dequeue, before every prefill chunk, and between decode steps.
//!   Sessions addressed as `spec:<target>|<draft>@<k>` decode
//!   speculatively through [`chipalign_nn::SpecDecoder`]: a cheap draft
//!   proposes `k` tokens per round, the target verifies them in one
//!   batched forward, and greedy output stays byte-identical to plain
//!   decoding — a panicking draft degrades the session to plain decode,
//!   never cancels it.
//! - **TCP front end** ([`server::Server`]): newline-delimited JSON over
//!   `std::net`, one response line per request line, graceful drain on
//!   shutdown.
//! - **Metrics** ([`metrics::Metrics`]): lock-free counters plus
//!   power-of-two latency histograms, queryable over the wire.
//!
//! Determinism is load-bearing: a scheduled session decodes through the
//! same [`chipalign_nn::StepDecoder`] that powers
//! [`chipalign_nn::generate::generate`], so greedy outputs served under
//! concurrency are byte-identical to a single-threaded `generate()` call —
//! the e2e tests assert exactly that.
//!
//! ```no_run
//! use chipalign_pipeline::zoo::{Quality, Zoo, ZooConfig};
//! use chipalign_serve::{Client, GenerateRequest, ModelRegistry, Server, ServerConfig};
//!
//! let zoo = Zoo::new(ZooConfig {
//!     quality: Quality::Smoke,
//!     seed: 2025,
//!     cache_dir: Some("artifacts/zoo".into()),
//! })?;
//! let server = Server::bind(ServerConfig::default(), ModelRegistry::new(zoo))?;
//! let mut client = Client::connect(server.local_addr())?;
//! let gen = client.generate(GenerateRequest::greedy(
//!     "merge:eda-qwen+instruct-qwen@0.6",
//!     "Q:what is CDC?;A:",
//!     48,
//! ))?;
//! println!("{}", gen.text);
//! server.shutdown();
//! # Ok::<(), chipalign_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod client;
pub mod error;
#[cfg(feature = "fault-inject")]
pub mod faults;
pub mod metrics;
pub mod prefix;
pub mod protocol;
pub mod registry;
pub mod scheduler;
pub mod server;

pub use client::{Client, Retrier, RetryPolicy};
pub use error::ServeError;
pub use metrics::{KvPoolDtypeGauges, Metrics, MetricsSnapshot};
pub use prefix::{PrefixCache, PrefixCacheConfig};
pub use protocol::{
    ErrorCode, FinishReason, GenerateRequest, Generation, LoadedModel, ReplicaHealth,
    ReplicaStatus, Request, Response, WireError, PROTOCOL_VERSION,
};
pub use registry::{all_zoo_models, ModelRegistry, ModelSpec, SpecResolution};
pub use scheduler::{Scheduler, SchedulerConfig, SessionRequest, SessionResult, SpecDraft};
pub use server::{Server, ServerConfig};

//! The metrics core: lock-free counters and latency histograms.
//!
//! Every counter is a relaxed atomic — the serving hot path never takes a
//! lock to record an observation. Latencies land in a power-of-two
//! histogram (bucket `i` covers `[2^i, 2^(i+1))` microseconds), which keeps
//! recording O(1) and percentile queries a 48-element scan. Quantiles are
//! therefore upper bounds with at most 2× resolution — good enough to spot
//! regressions; the load generator computes exact percentiles client-side.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use chipalign_nn::KvPool;
use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets: covers 1 µs .. ~2^47 µs (~4 years).
const BUCKETS: usize = 48;

/// Buckets in the batch-occupancy histogram: index `n` counts slices that
/// advanced exactly `n` sessions, with everything `>= 16` folded into the
/// last slot (the scheduler's `max_batch` rarely exceeds it in practice).
const BATCH_BUCKETS: usize = 17;

/// A lock-free power-of-two latency histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one observation in microseconds.
    pub fn record(&self, us: u64) {
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `p`-quantile (`0 < p <= 1`) as an upper bound in microseconds,
    /// or 0 when the histogram is empty.
    #[must_use]
    pub fn quantile_upper_us(&self, p: f64) -> u64 {
        quantile_upper_us_from(&self.bucket_counts(), p)
    }

    /// The raw per-bucket counts (always [`BUCKETS`] entries). Bucket `i`
    /// covers `[2^i, 2^(i+1))` microseconds. Snapshots carry these so
    /// fleet-level aggregation can sum histograms and recompute quantiles
    /// instead of averaging per-replica percentiles (which is meaningless).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// The `p`-quantile upper bound in microseconds over raw power-of-two
/// bucket counts (as produced by [`Histogram::bucket_counts`]), or 0 when
/// the counts are empty. Used to recompute fleet-wide quantiles after
/// [`MetricsSnapshot::absorb`] has summed per-replica buckets.
#[must_use]
pub fn quantile_upper_us_from(counts: &[u64], p: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            // Upper edge of bucket i: 2^(i+1) - 1 µs. A newer-protocol
            // replica may ship more than 64 buckets through
            // `absorb_buckets`; clamp the shift instead of overflowing
            // (which panics in debug builds) so fleet aggregation stays
            // forward-compatible.
            return if i >= 63 {
                u64::MAX
            } else {
                (1u64 << (i + 1)) - 1
            };
        }
    }
    (1u64 << BUCKETS) - 1
}

/// Counters and histograms for one server instance.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Admission attempts (accepted or not).
    requests: AtomicU64,
    /// Sessions that finished and returned a generation.
    completed: AtomicU64,
    /// Admission-control rejections.
    rejected_overload: AtomicU64,
    /// Sessions rejected because the server was draining.
    rejected_shutdown: AtomicU64,
    /// Sessions that died on a decode error.
    failed: AtomicU64,
    /// Sessions that hit their deadline.
    deadline_exceeded: AtomicU64,
    /// Decode slices that panicked (session cancelled, worker survived).
    worker_panics: AtomicU64,
    /// Sessions cancelled by the stall watchdog.
    watchdog_cancels: AtomicU64,
    /// Checkpoint loads rejected for checksum/corruption/non-finite data.
    checksum_failures: AtomicU64,
    /// Generate requests that arrived flagged as client retries.
    retries_attempted: AtomicU64,
    /// Worker threads that died and re-entered their loop.
    workers_respawned: AtomicU64,
    /// Slices that advanced two or more sessions through one batched step.
    batched_slices: AtomicU64,
    /// How many sessions each dequeued slice advanced (index = batch size,
    /// `>= 16` folded into the last bucket).
    batch_occupancy: [AtomicU64; BATCH_BUCKETS],
    /// New tokens produced by completed sessions.
    tokens_out: AtomicU64,
    /// Prompt tokens consumed by admitted sessions.
    prompt_tokens: AtomicU64,
    /// Sessions seeded from the shared-prefix cache.
    prefix_hits: AtomicU64,
    /// Prompt tokens whose prefill was skipped thanks to a prefix hit.
    prefix_tokens_reused: AtomicU64,
    /// Prefill chunks processed by the scheduler (initial prompt slices
    /// and window-slide replays alike).
    prefill_chunks: AtomicU64,
    /// Draft tokens proposed by speculative-decoding rounds.
    draft_tokens_proposed: AtomicU64,
    /// Draft tokens the target model verified and accepted.
    accepted_draft_tokens: AtomicU64,
    /// Speculative rounds abandoned for plain decode (draft panic or a
    /// draft-side decode error); the session itself continues.
    spec_fallbacks: AtomicU64,
    /// Merged models evicted from the registry's LRU cache.
    merge_evictions: AtomicU64,
    /// Prefix-cache snapshots evicted under KV-pool pressure (admission
    /// reclaiming blocks for a live session).
    pool_evictions: AtomicU64,
    /// Total weight bytes of every model in the registry cache at its
    /// decode dtype (int8 models count their quantized footprint). A
    /// gauge, not a counter: the registry recomputes it on every insert
    /// and evict.
    weights_bytes: AtomicU64,
    /// Paged KV pools whose gauges are summed into snapshots. Weak so the
    /// metrics core never keeps a dead model's pool alive; dead entries
    /// are pruned on registration and at snapshot time.
    kv_pools: Mutex<Vec<Weak<KvPool>>>,
    /// Admission-to-completion latency.
    latency: Histogram,
    /// Admission-to-first-decode-slice wait.
    queue_wait: Histogram,
    /// Per-chunk prefill compute time.
    prefill: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            watchdog_cancels: AtomicU64::new(0),
            checksum_failures: AtomicU64::new(0),
            retries_attempted: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            batched_slices: AtomicU64::new(0),
            batch_occupancy: std::array::from_fn(|_| AtomicU64::new(0)),
            tokens_out: AtomicU64::new(0),
            prompt_tokens: AtomicU64::new(0),
            prefix_hits: AtomicU64::new(0),
            prefix_tokens_reused: AtomicU64::new(0),
            prefill_chunks: AtomicU64::new(0),
            draft_tokens_proposed: AtomicU64::new(0),
            accepted_draft_tokens: AtomicU64::new(0),
            spec_fallbacks: AtomicU64::new(0),
            merge_evictions: AtomicU64::new(0),
            pool_evictions: AtomicU64::new(0),
            weights_bytes: AtomicU64::new(0),
            kv_pools: Mutex::new(Vec::new()),
            latency: Histogram::default(),
            queue_wait: Histogram::default(),
            prefill: Histogram::default(),
        }
    }
}

impl Metrics {
    /// Creates a fresh metrics core anchored at "now".
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records an admission attempt.
    pub fn on_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an admission-control rejection.
    pub fn on_rejected_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rejection because the server is draining.
    pub fn on_rejected_shutdown(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the prompt size of an admitted session.
    pub fn on_admitted(&self, prompt_tokens: usize) {
        self.prompt_tokens
            .fetch_add(prompt_tokens as u64, Ordering::Relaxed);
    }

    /// Records the queue wait of a session reaching its first decode slice.
    pub fn on_first_slice(&self, queue_us: u64) {
        self.queue_wait.record(queue_us);
    }

    /// Records a successful completion.
    pub fn on_completed(&self, tokens: usize, latency_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.tokens_out.fetch_add(tokens as u64, Ordering::Relaxed);
        self.latency.record(latency_us);
    }

    /// Records a session that hit its deadline.
    pub fn on_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session that failed with a decode error.
    pub fn on_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a decode slice cancelled by a caught panic.
    pub fn on_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session cancelled by the stall watchdog.
    pub fn on_watchdog_cancel(&self) {
        self.watchdog_cancels.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a checkpoint rejected at load for checksum, corruption, or
    /// non-finite weights.
    pub fn on_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an incoming generate request that a client flagged as a
    /// retry of an earlier attempt.
    pub fn on_retry_attempted(&self) {
        self.retries_attempted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker thread dying and re-entering its loop.
    pub fn on_worker_respawned(&self) {
        self.workers_respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a session seeded from the shared-prefix cache with
    /// `tokens_reused` already-prefilled positions.
    pub fn on_prefix_hit(&self, tokens_reused: usize) {
        self.prefix_hits.fetch_add(1, Ordering::Relaxed);
        self.prefix_tokens_reused
            .fetch_add(tokens_reused as u64, Ordering::Relaxed);
    }

    /// Records one prefill chunk and its compute time.
    pub fn on_prefill_chunk(&self, us: u64) {
        self.prefill_chunks.fetch_add(1, Ordering::Relaxed);
        self.prefill.record(us);
    }

    /// Records the outcome of speculative-decoding rounds: `proposed` draft
    /// tokens offered to the target, of which `accepted` survived
    /// verification. The acceptance rate is derived at read time
    /// (`accepted_draft_tokens / draft_tokens_proposed`), never stored, so
    /// fleet `absorb` can sum both counters exactly.
    pub fn on_spec_round(&self, proposed: u64, accepted: u64) {
        self.draft_tokens_proposed
            .fetch_add(proposed, Ordering::Relaxed);
        self.accepted_draft_tokens
            .fetch_add(accepted, Ordering::Relaxed);
    }

    /// Records speculative rounds degraded to plain decode (a panicking or
    /// erroring draft cancels only speculation, never the session).
    pub fn on_spec_fallback(&self, n: u64) {
        self.spec_fallbacks.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a merged model evicted from the registry's LRU cache.
    pub fn on_merge_eviction(&self) {
        self.merge_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a prefix-cache snapshot evicted to reclaim KV blocks for a
    /// session being admitted.
    pub fn on_pool_eviction(&self) {
        self.pool_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the resident-weights gauge (total bytes across every cached
    /// model at its decode dtype). Called by the registry with a freshly
    /// recomputed total, so this stores rather than accumulates.
    pub fn set_weights_bytes(&self, bytes: u64) {
        self.weights_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Registers a paged KV pool so its block gauges flow into snapshots.
    /// Idempotent per pool; holds only a weak reference, so a pool dies
    /// with its model and silently leaves the gauges.
    pub fn register_kv_pool(&self, pool: &Arc<KvPool>) {
        let mut pools = self.kv_pools.lock().expect("kv pool list poisoned");
        pools.retain(|w| w.strong_count() > 0);
        if !pools
            .iter()
            .any(|w| std::ptr::eq(w.as_ptr(), Arc::as_ptr(pool)))
        {
            pools.push(Arc::downgrade(pool));
        }
    }

    /// Sums the block, byte, and CoW gauges across live registered pools
    /// (pruning dead ones), both in total and sliced per KV dtype.
    fn pool_gauges(&self) -> PoolGauges {
        let mut pools = self.kv_pools.lock().expect("kv pool list poisoned");
        pools.retain(|w| w.strong_count() > 0);
        let mut g = PoolGauges::default();
        for pool in pools.iter().filter_map(Weak::upgrade) {
            let in_use = pool.blocks_in_use() as u64;
            let free = pool.blocks_free() as u64;
            let bytes = pool.bytes_in_use() as u64;
            g.in_use += in_use;
            g.free += free;
            g.bytes += bytes;
            g.cow += pool.cow_copies();
            let dtype = pool.dtype().name();
            let row = match g.by_dtype.iter_mut().find(|r| r.dtype == dtype) {
                Some(row) => row,
                None => {
                    g.by_dtype.push(KvPoolDtypeGauges {
                        dtype: dtype.to_string(),
                        ..KvPoolDtypeGauges::default()
                    });
                    g.by_dtype.last_mut().expect("just pushed")
                }
            };
            row.blocks_in_use += in_use;
            row.blocks_free += free;
            row.bytes_in_use += bytes;
        }
        g.by_dtype.sort_by(|a, b| a.dtype.cmp(&b.dtype));
        g
    }

    /// Records a dequeued slice that advanced `n` sessions together.
    pub fn on_batch(&self, n: usize) {
        self.batch_occupancy[n.min(BATCH_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        if n >= 2 {
            self.batched_slices.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A consistent-enough point-in-time view (individual counters are read
    /// relaxed; rates use wall-clock uptime).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let uptime = self.started.elapsed();
        let uptime_s = uptime.as_secs_f64().max(1e-9);
        let completed = self.completed.load(Ordering::Relaxed);
        let tokens_out = self.tokens_out.load(Ordering::Relaxed);
        let pools = self.pool_gauges();
        MetricsSnapshot {
            uptime_ms: uptime.as_millis() as u64,
            requests: self.requests.load(Ordering::Relaxed),
            completed,
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            watchdog_cancels: self.watchdog_cancels.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            retries_attempted: self.retries_attempted.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            batched_slices: self.batched_slices.load(Ordering::Relaxed),
            batch_occupancy: self
                .batch_occupancy
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            tokens_out,
            prompt_tokens: self.prompt_tokens.load(Ordering::Relaxed),
            prefix_hits: self.prefix_hits.load(Ordering::Relaxed),
            prefix_tokens_reused: self.prefix_tokens_reused.load(Ordering::Relaxed),
            prefill_chunks: self.prefill_chunks.load(Ordering::Relaxed),
            draft_tokens_proposed: self.draft_tokens_proposed.load(Ordering::Relaxed),
            accepted_draft_tokens: self.accepted_draft_tokens.load(Ordering::Relaxed),
            spec_fallbacks: self.spec_fallbacks.load(Ordering::Relaxed),
            merge_evictions: self.merge_evictions.load(Ordering::Relaxed),
            pool_evictions: self.pool_evictions.load(Ordering::Relaxed),
            weights_bytes: self.weights_bytes.load(Ordering::Relaxed),
            simd_backend: chipalign_tensor::backend::active_name().to_string(),
            kv_blocks_in_use: pools.in_use,
            kv_blocks_free: pools.free,
            kv_bytes_in_use: pools.bytes,
            kv_pool_dtypes: pools.by_dtype,
            cow_copies: pools.cow,
            requests_per_sec: completed as f64 / uptime_s,
            tokens_per_sec: tokens_out as f64 / uptime_s,
            latency_p50_ms: self.latency.quantile_upper_us(0.50) as f64 / 1e3,
            latency_p95_ms: self.latency.quantile_upper_us(0.95) as f64 / 1e3,
            queue_p50_ms: self.queue_wait.quantile_upper_us(0.50) as f64 / 1e3,
            queue_p95_ms: self.queue_wait.quantile_upper_us(0.95) as f64 / 1e3,
            prefill_p50_ms: self.prefill.quantile_upper_us(0.50) as f64 / 1e3,
            prefill_p95_ms: self.prefill.quantile_upper_us(0.95) as f64 / 1e3,
            latency_buckets: self.latency.bucket_counts(),
            queue_buckets: self.queue_wait.bucket_counts(),
            prefill_buckets: self.prefill.bucket_counts(),
        }
    }
}

/// Summed pool gauges, total and per dtype (snapshot-internal).
#[derive(Debug, Default)]
struct PoolGauges {
    in_use: u64,
    free: u64,
    bytes: u64,
    cow: u64,
    by_dtype: Vec<KvPoolDtypeGauges>,
}

/// Per-KV-dtype slice of the pool gauges: the dtype label on
/// `kv_blocks_in_use` / `kv_blocks_free`, plus the bytes those blocks pin
/// (int8 pools hold sealed blocks at ~¼ the f32 size, so block counts
/// alone no longer imply memory use).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvPoolDtypeGauges {
    /// KV dtype label (`"f32"` / `"int8"`).
    pub dtype: String,
    /// Blocks allocated across pools of this dtype.
    pub blocks_in_use: u64,
    /// Blocks still allocatable across pools of this dtype.
    pub blocks_free: u64,
    /// Bytes resident across pools of this dtype.
    pub bytes_in_use: u64,
}

/// A point-in-time metrics view, as sent over the wire.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Milliseconds since the metrics core was created.
    pub uptime_ms: u64,
    /// Admission attempts.
    pub requests: u64,
    /// Finished generations.
    pub completed: u64,
    /// Admission-control rejections.
    pub rejected_overload: u64,
    /// Draining-time rejections.
    pub rejected_shutdown: u64,
    /// Decode failures.
    pub failed: u64,
    /// Deadline expiries.
    pub deadline_exceeded: u64,
    /// Decode slices that panicked (the session was cancelled with a
    /// structured error; the worker survived).
    #[serde(default)]
    pub worker_panics: u64,
    /// Sessions cancelled by the stall watchdog.
    #[serde(default)]
    pub watchdog_cancels: u64,
    /// Checkpoint loads rejected for checksum/corruption/non-finite data.
    #[serde(default)]
    pub checksum_failures: u64,
    /// Generate requests flagged by clients as retries.
    #[serde(default)]
    pub retries_attempted: u64,
    /// Worker threads that died and were respawned.
    #[serde(default)]
    pub workers_respawned: u64,
    /// Slices that advanced two or more sessions through one batched step.
    #[serde(default)]
    pub batched_slices: u64,
    /// Batch-occupancy histogram: entry `n` counts slices that advanced
    /// exactly `n` sessions (`>= 16` folded into the last entry). Empty
    /// when the snapshot came from a server without batching.
    #[serde(default)]
    pub batch_occupancy: Vec<u64>,
    /// Total new tokens produced.
    pub tokens_out: u64,
    /// Total prompt tokens consumed.
    pub prompt_tokens: u64,
    /// Sessions seeded from the shared-prefix cache.
    #[serde(default)]
    pub prefix_hits: u64,
    /// Prompt tokens whose prefill was skipped thanks to prefix hits.
    #[serde(default)]
    pub prefix_tokens_reused: u64,
    /// Prefill chunks processed by the scheduler.
    #[serde(default)]
    pub prefill_chunks: u64,
    /// Draft tokens proposed by speculative-decoding rounds. The fleet
    /// acceptance rate is `accepted_draft_tokens / draft_tokens_proposed`.
    #[serde(default)]
    pub draft_tokens_proposed: u64,
    /// Draft tokens the target model verified and accepted.
    #[serde(default)]
    pub accepted_draft_tokens: u64,
    /// Speculative rounds degraded to plain decode (draft panic or error).
    #[serde(default)]
    pub spec_fallbacks: u64,
    /// Merged models evicted from the registry's LRU cache.
    #[serde(default)]
    pub merge_evictions: u64,
    /// Prefix-cache snapshots evicted under KV-pool pressure.
    #[serde(default)]
    pub pool_evictions: u64,
    /// Total weight bytes resident in the registry cache at decode dtype.
    #[serde(default)]
    pub weights_bytes: u64,
    /// The kernel backend this server selected at startup (`scalar`,
    /// `blocked`, `simd`, or `simd(blocked-fallback)` when AVX2 is
    /// absent). Empty from pre-v3 servers.
    #[serde(default)]
    pub simd_backend: String,
    /// KV blocks currently allocated across every registered paged pool.
    #[serde(default)]
    pub kv_blocks_in_use: u64,
    /// KV blocks still allocatable across every registered paged pool.
    #[serde(default)]
    pub kv_blocks_free: u64,
    /// Bytes resident across every registered paged pool (sealed int8
    /// blocks count at their quantized size, open tails at f32).
    #[serde(default)]
    pub kv_bytes_in_use: u64,
    /// The same block/byte gauges sliced per KV dtype. Empty from servers
    /// that predate int8 KV.
    #[serde(default)]
    pub kv_pool_dtypes: Vec<KvPoolDtypeGauges>,
    /// Copy-on-write block duplications across every registered pool (a
    /// shared tail block privatised before a divergent write).
    #[serde(default)]
    pub cow_copies: u64,
    /// Completions per second of uptime.
    pub requests_per_sec: f64,
    /// New tokens per second of uptime.
    pub tokens_per_sec: f64,
    /// Median admission-to-completion latency (upper bound, ms).
    pub latency_p50_ms: f64,
    /// 95th-percentile admission-to-completion latency (upper bound, ms).
    pub latency_p95_ms: f64,
    /// Median queue wait (upper bound, ms).
    pub queue_p50_ms: f64,
    /// 95th-percentile queue wait (upper bound, ms).
    pub queue_p95_ms: f64,
    /// Median per-chunk prefill compute time (upper bound, ms).
    #[serde(default)]
    pub prefill_p50_ms: f64,
    /// 95th-percentile per-chunk prefill compute time (upper bound, ms).
    #[serde(default)]
    pub prefill_p95_ms: f64,
    /// Raw latency histogram buckets (power-of-two, µs; see
    /// [`Histogram::bucket_counts`]). Empty from pre-v3 servers.
    #[serde(default)]
    pub latency_buckets: Vec<u64>,
    /// Raw queue-wait histogram buckets.
    #[serde(default)]
    pub queue_buckets: Vec<u64>,
    /// Raw prefill histogram buckets.
    #[serde(default)]
    pub prefill_buckets: Vec<u64>,
}

/// Element-wise `a += b`, extending `a` when `b` is longer.
fn absorb_buckets(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (dst, src) in a.iter_mut().zip(b) {
        *dst = dst.saturating_add(*src);
    }
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one, producing fleet-level totals.
    ///
    /// Counters and gauges sum (saturating). Histogram buckets sum
    /// element-wise, and the derived quantiles are recomputed from the
    /// merged buckets — never averaged — whenever either side carries raw
    /// buckets; when both sides predate v3 (no buckets), the pessimistic
    /// max of the two upper bounds is kept. `uptime_ms` becomes the max
    /// (replicas run concurrently, so fleet uptime is the longest-lived
    /// replica, not the sum), and the throughput rates are recomputed from
    /// the summed counts over that uptime.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        self.requests = self.requests.saturating_add(other.requests);
        self.completed = self.completed.saturating_add(other.completed);
        self.rejected_overload = self
            .rejected_overload
            .saturating_add(other.rejected_overload);
        self.rejected_shutdown = self
            .rejected_shutdown
            .saturating_add(other.rejected_shutdown);
        self.failed = self.failed.saturating_add(other.failed);
        self.deadline_exceeded = self
            .deadline_exceeded
            .saturating_add(other.deadline_exceeded);
        self.worker_panics = self.worker_panics.saturating_add(other.worker_panics);
        self.watchdog_cancels = self.watchdog_cancels.saturating_add(other.watchdog_cancels);
        self.checksum_failures = self
            .checksum_failures
            .saturating_add(other.checksum_failures);
        self.retries_attempted = self
            .retries_attempted
            .saturating_add(other.retries_attempted);
        self.workers_respawned = self
            .workers_respawned
            .saturating_add(other.workers_respawned);
        self.batched_slices = self.batched_slices.saturating_add(other.batched_slices);
        absorb_buckets(&mut self.batch_occupancy, &other.batch_occupancy);
        self.tokens_out = self.tokens_out.saturating_add(other.tokens_out);
        self.prompt_tokens = self.prompt_tokens.saturating_add(other.prompt_tokens);
        self.prefix_hits = self.prefix_hits.saturating_add(other.prefix_hits);
        self.prefix_tokens_reused = self
            .prefix_tokens_reused
            .saturating_add(other.prefix_tokens_reused);
        self.prefill_chunks = self.prefill_chunks.saturating_add(other.prefill_chunks);
        self.draft_tokens_proposed = self
            .draft_tokens_proposed
            .saturating_add(other.draft_tokens_proposed);
        self.accepted_draft_tokens = self
            .accepted_draft_tokens
            .saturating_add(other.accepted_draft_tokens);
        self.spec_fallbacks = self.spec_fallbacks.saturating_add(other.spec_fallbacks);
        self.merge_evictions = self.merge_evictions.saturating_add(other.merge_evictions);
        self.pool_evictions = self.pool_evictions.saturating_add(other.pool_evictions);
        self.weights_bytes = self.weights_bytes.saturating_add(other.weights_bytes);
        if self.simd_backend.is_empty() {
            self.simd_backend.clone_from(&other.simd_backend);
        }
        self.kv_blocks_in_use = self.kv_blocks_in_use.saturating_add(other.kv_blocks_in_use);
        self.kv_blocks_free = self.kv_blocks_free.saturating_add(other.kv_blocks_free);
        self.kv_bytes_in_use = self.kv_bytes_in_use.saturating_add(other.kv_bytes_in_use);
        for o in &other.kv_pool_dtypes {
            match self.kv_pool_dtypes.iter_mut().find(|g| g.dtype == o.dtype) {
                Some(g) => {
                    g.blocks_in_use = g.blocks_in_use.saturating_add(o.blocks_in_use);
                    g.blocks_free = g.blocks_free.saturating_add(o.blocks_free);
                    g.bytes_in_use = g.bytes_in_use.saturating_add(o.bytes_in_use);
                }
                None => self.kv_pool_dtypes.push(o.clone()),
            }
        }
        self.kv_pool_dtypes.sort_by(|a, b| a.dtype.cmp(&b.dtype));
        self.cow_copies = self.cow_copies.saturating_add(other.cow_copies);
        absorb_buckets(&mut self.latency_buckets, &other.latency_buckets);
        absorb_buckets(&mut self.queue_buckets, &other.queue_buckets);
        absorb_buckets(&mut self.prefill_buckets, &other.prefill_buckets);
        self.uptime_ms = self.uptime_ms.max(other.uptime_ms);
        let uptime_s = (self.uptime_ms as f64 / 1e3).max(1e-9);
        self.requests_per_sec = self.completed as f64 / uptime_s;
        self.tokens_per_sec = self.tokens_out as f64 / uptime_s;
        let requantile = |buckets: &[u64], fallback: f64, p: f64| {
            if buckets.iter().any(|&c| c > 0) {
                quantile_upper_us_from(buckets, p) as f64 / 1e3
            } else {
                fallback
            }
        };
        self.latency_p50_ms = requantile(
            &self.latency_buckets,
            self.latency_p50_ms.max(other.latency_p50_ms),
            0.50,
        );
        self.latency_p95_ms = requantile(
            &self.latency_buckets,
            self.latency_p95_ms.max(other.latency_p95_ms),
            0.95,
        );
        self.queue_p50_ms = requantile(
            &self.queue_buckets,
            self.queue_p50_ms.max(other.queue_p50_ms),
            0.50,
        );
        self.queue_p95_ms = requantile(
            &self.queue_buckets,
            self.queue_p95_ms.max(other.queue_p95_ms),
            0.95,
        );
        self.prefill_p50_ms = requantile(
            &self.prefill_buckets,
            self.prefill_p50_ms.max(other.prefill_p50_ms),
            0.50,
        );
        self.prefill_p95_ms = requantile(
            &self.prefill_buckets,
            self.prefill_p95_ms.max(other.prefill_p95_ms),
            0.95,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_observations() {
        let h = Histogram::default();
        for us in [10u64, 100, 1_000, 10_000, 100_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 5);
        // p50 of {10,100,1000,10000,100000}: the 3rd observation (1000 µs)
        // lands in bucket [512, 1024), upper edge 1023.
        assert_eq!(h.quantile_upper_us(0.5), 1023);
        assert!(h.quantile_upper_us(1.0) >= 100_000);
        assert!(h.quantile_upper_us(0.01) >= 10);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_upper_us(0.95), 0);
    }

    #[test]
    fn zero_and_huge_observations_clamp_into_range() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_upper_us(1.0) > 0);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        m.on_request();
        m.on_request();
        m.on_admitted(12);
        m.on_first_slice(500);
        m.on_completed(32, 2_000);
        m.on_rejected_overload();
        let snap = m.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.rejected_overload, 1);
        assert_eq!(snap.tokens_out, 32);
        assert_eq!(snap.prompt_tokens, 12);
        assert!(snap.latency_p50_ms > 0.0);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.completed, 1);
    }

    #[test]
    fn fault_counters_are_independent() {
        let m = Metrics::new();
        m.on_worker_panic();
        m.on_watchdog_cancel();
        m.on_watchdog_cancel();
        m.on_checksum_failure();
        m.on_retry_attempted();
        m.on_worker_respawned();
        let snap = m.snapshot();
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.watchdog_cancels, 2);
        assert_eq!(snap.checksum_failures, 1);
        assert_eq!(snap.retries_attempted, 1);
        assert_eq!(snap.workers_respawned, 1);
        assert_eq!(snap.failed, 0, "fault counters must not bleed into failed");
    }

    #[test]
    fn batch_occupancy_buckets_and_counter() {
        let m = Metrics::new();
        m.on_batch(1);
        m.on_batch(1);
        m.on_batch(4);
        m.on_batch(16);
        m.on_batch(100); // folds into the last bucket
        let snap = m.snapshot();
        assert_eq!(snap.batch_occupancy.len(), BATCH_BUCKETS);
        assert_eq!(snap.batch_occupancy[1], 2);
        assert_eq!(snap.batch_occupancy[4], 1);
        assert_eq!(snap.batch_occupancy[16], 2);
        assert_eq!(
            snap.batched_slices, 3,
            "single-session slices must not count as batched"
        );
    }

    #[test]
    fn prefill_and_prefix_counters_flow_into_snapshot() {
        let m = Metrics::new();
        m.on_prefix_hit(24);
        m.on_prefix_hit(8);
        m.on_prefill_chunk(1_000);
        m.on_prefill_chunk(2_000);
        m.on_prefill_chunk(4_000);
        m.on_merge_eviction();
        let snap = m.snapshot();
        assert_eq!(snap.prefix_hits, 2);
        assert_eq!(snap.prefix_tokens_reused, 32);
        assert_eq!(snap.prefill_chunks, 3);
        assert_eq!(snap.merge_evictions, 1);
        assert!(snap.prefill_p50_ms > 0.0);
        assert!(snap.prefill_p95_ms >= snap.prefill_p50_ms);
        assert_eq!(snap.failed, 0, "prefill counters must not bleed elsewhere");
    }

    #[test]
    fn snapshot_without_fault_fields_still_parses() {
        // A v1 server's snapshot predates the fault counters; the client
        // must still accept it (serde defaults).
        let m = Metrics::new();
        let mut v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&m.snapshot()).expect("serialize"))
                .expect("value");
        let obj = v.as_object_mut().expect("object");
        for field in [
            "worker_panics",
            "watchdog_cancels",
            "checksum_failures",
            "retries_attempted",
            "workers_respawned",
            "batched_slices",
            "batch_occupancy",
            "prefix_hits",
            "prefix_tokens_reused",
            "prefill_chunks",
            "draft_tokens_proposed",
            "accepted_draft_tokens",
            "spec_fallbacks",
            "merge_evictions",
            "pool_evictions",
            "weights_bytes",
            "simd_backend",
            "kv_blocks_in_use",
            "kv_blocks_free",
            "kv_bytes_in_use",
            "kv_pool_dtypes",
            "cow_copies",
            "prefill_p50_ms",
            "prefill_p95_ms",
            "latency_buckets",
            "queue_buckets",
            "prefill_buckets",
        ] {
            obj.remove(field);
        }
        let back: MetricsSnapshot = serde_json::from_value(v).expect("parse without fault fields");
        assert_eq!(back.worker_panics, 0);
        assert_eq!(back.batched_slices, 0);
        assert!(back.batch_occupancy.is_empty());
        assert_eq!(back.prefix_hits, 0);
        assert_eq!(back.prefill_chunks, 0);
        assert_eq!(back.draft_tokens_proposed, 0);
        assert_eq!(back.accepted_draft_tokens, 0);
        assert_eq!(back.spec_fallbacks, 0);
        assert_eq!(back.merge_evictions, 0);
        assert_eq!(back.pool_evictions, 0);
        assert_eq!(back.weights_bytes, 0);
        assert!(back.simd_backend.is_empty());
        assert_eq!(back.kv_blocks_in_use, 0);
        assert_eq!(back.kv_blocks_free, 0);
        assert_eq!(back.kv_bytes_in_use, 0);
        assert!(back.kv_pool_dtypes.is_empty());
        assert_eq!(back.cow_copies, 0);
        assert_eq!(back.prefill_p95_ms, 0.0);
        assert!(back.latency_buckets.is_empty());
        assert!(back.queue_buckets.is_empty());
        assert!(back.prefill_buckets.is_empty());
    }

    #[test]
    fn absorb_of_n_snapshots_equals_the_sum() {
        // Three replicas with disjoint activity; the fleet aggregate must
        // be the exact sum of every counter and histogram bucket.
        let snaps: Vec<MetricsSnapshot> = (0..3u64)
            .map(|i| {
                let m = Metrics::new();
                for _ in 0..=i {
                    m.on_request();
                    m.on_admitted(10);
                    m.on_first_slice(300 * (i + 1));
                    m.on_completed(8, 1_000 * (i + 1));
                }
                m.on_rejected_overload();
                m.on_prefix_hit(4);
                m.on_prefill_chunk(500);
                m.on_batch(2);
                m.snapshot()
            })
            .collect();

        let mut fleet = MetricsSnapshot::default();
        for s in &snaps {
            fleet.absorb(s);
        }

        let sum = |f: fn(&MetricsSnapshot) -> u64| snaps.iter().map(f).sum::<u64>();
        assert_eq!(fleet.requests, sum(|s| s.requests));
        assert_eq!(fleet.completed, sum(|s| s.completed));
        assert_eq!(fleet.rejected_overload, sum(|s| s.rejected_overload));
        assert_eq!(fleet.tokens_out, sum(|s| s.tokens_out));
        assert_eq!(fleet.prompt_tokens, sum(|s| s.prompt_tokens));
        assert_eq!(fleet.prefix_hits, sum(|s| s.prefix_hits));
        assert_eq!(fleet.prefix_tokens_reused, sum(|s| s.prefix_tokens_reused));
        assert_eq!(fleet.prefill_chunks, sum(|s| s.prefill_chunks));
        assert_eq!(fleet.batched_slices, sum(|s| s.batched_slices));
        assert_eq!(fleet.batch_occupancy[2], 3);

        // Histogram buckets sum element-wise: total observation count is
        // preserved exactly.
        let fleet_latency: u64 = fleet.latency_buckets.iter().sum();
        let each_latency: u64 = snaps
            .iter()
            .map(|s| s.latency_buckets.iter().sum::<u64>())
            .sum();
        assert_eq!(fleet_latency, each_latency);
        assert_eq!(fleet_latency, fleet.completed);

        // Quantiles are recomputed from merged buckets, so the fleet p95
        // must bound the slowest replica's observations (3000 µs lands in
        // [2048, 4096), upper edge 4.095 ms).
        assert_eq!(fleet.latency_p95_ms, 4.095);
        // Uptime is the max, not the sum.
        let max_uptime = snaps.iter().map(|s| s.uptime_ms).max().unwrap_or(0);
        assert_eq!(fleet.uptime_ms, max_uptime);
    }

    #[test]
    fn absorb_without_buckets_keeps_pessimistic_quantiles() {
        // Two pre-v3 snapshots (no raw buckets): absorb cannot recompute,
        // so it keeps the max of the reported upper bounds.
        let mut a = MetricsSnapshot {
            completed: 5,
            latency_p95_ms: 2.0,
            uptime_ms: 1_000,
            ..MetricsSnapshot::default()
        };
        let b = MetricsSnapshot {
            completed: 7,
            latency_p95_ms: 9.0,
            uptime_ms: 4_000,
            ..MetricsSnapshot::default()
        };
        a.absorb(&b);
        assert_eq!(a.completed, 12);
        assert_eq!(a.latency_p95_ms, 9.0);
        assert_eq!(a.uptime_ms, 4_000);
        assert!((a.requests_per_sec - 3.0).abs() < 1e-9, "12 done over 4 s");
    }

    #[test]
    fn weights_gauge_and_backend_flow_into_snapshot_and_absorb() {
        let m = Metrics::new();
        m.set_weights_bytes(1_000);
        m.set_weights_bytes(640); // a gauge: stores, never accumulates
        let snap = m.snapshot();
        assert_eq!(snap.weights_bytes, 640);
        assert!(
            ["scalar", "blocked", "simd", "simd(blocked-fallback)"]
                .contains(&snap.simd_backend.as_str()),
            "unexpected backend {:?}",
            snap.simd_backend
        );

        // Fleet aggregation: bytes sum, the backend label survives from
        // the first replica that reported one.
        let mut fleet = MetricsSnapshot::default();
        fleet.absorb(&snap);
        fleet.absorb(&snap);
        assert_eq!(fleet.weights_bytes, 1_280);
        assert_eq!(fleet.simd_backend, snap.simd_backend);
    }

    #[test]
    fn quantiles_from_raw_buckets_match_histogram() {
        let h = Histogram::default();
        for us in [10u64, 100, 1_000, 10_000, 100_000] {
            h.record(us);
        }
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), BUCKETS);
        assert_eq!(counts.iter().sum::<u64>(), 5);
        for p in [0.01, 0.5, 0.95, 1.0] {
            assert_eq!(quantile_upper_us_from(&counts, p), h.quantile_upper_us(p));
        }
        assert_eq!(quantile_upper_us_from(&[], 0.5), 0);
    }

    #[test]
    fn quantiles_clamp_on_long_counts_vectors() {
        // A newer-protocol replica could ship more than 64 buckets through
        // absorb_buckets; the shift must clamp instead of overflowing.
        for len in [64usize, 65, 80, 128] {
            let mut counts = vec![0u64; len];
            counts[len - 1] = 1;
            assert_eq!(
                quantile_upper_us_from(&counts, 0.95),
                u64::MAX,
                "length {len} must saturate, not panic"
            );
        }
        // The last representable bucket (i = 62) still reports its exact
        // upper edge.
        let mut counts = vec![0u64; 63];
        counts[62] = 1;
        assert_eq!(quantile_upper_us_from(&counts, 0.95), (1u64 << 63) - 1);
        // And merging a long vector into a short one keeps quantiles sane.
        let mut a = vec![1u64; BUCKETS];
        let mut b = vec![0u64; 70];
        b[69] = 5;
        absorb_buckets(&mut a, &b);
        assert_eq!(a.len(), 70);
        assert_eq!(quantile_upper_us_from(&a, 1.0), u64::MAX);
    }

    #[test]
    fn spec_counters_flow_into_snapshot_and_absorb() {
        let m = Metrics::new();
        m.on_spec_round(4, 3);
        m.on_spec_round(4, 0);
        m.on_spec_fallback(1);
        let snap = m.snapshot();
        assert_eq!(snap.draft_tokens_proposed, 8);
        assert_eq!(snap.accepted_draft_tokens, 3);
        assert_eq!(snap.spec_fallbacks, 1);
        assert_eq!(snap.failed, 0, "spec counters must not bleed elsewhere");

        // Fleet aggregation sums both sides of the acceptance rate.
        let mut fleet = MetricsSnapshot::default();
        fleet.absorb(&snap);
        fleet.absorb(&snap);
        assert_eq!(fleet.draft_tokens_proposed, 16);
        assert_eq!(fleet.accepted_draft_tokens, 6);
        assert_eq!(fleet.spec_fallbacks, 2);
    }

    #[test]
    fn pool_gauges_and_evictions_flow_into_snapshot() {
        use chipalign_model::ArchSpec;
        use chipalign_nn::{KvCache, KvPoolConfig, TinyLm};
        use chipalign_tensor::rng::Pcg32;

        let m = Metrics::new();
        let pool = KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks: 8,
            ..KvPoolConfig::default()
        })
        .expect("pool");
        m.register_kv_pool(&pool);
        m.register_kv_pool(&pool); // idempotent: counted once

        let mut arch = ArchSpec::tiny("metrics");
        arch.vocab_size = 99;
        let model = Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(1)).expect("model"));
        let mut cache = KvCache::new_paged(&model, &pool);
        cache.prefill(&[5, 6, 7, 8, 9, 10]).expect("prefill");
        m.on_pool_eviction();

        let snap = m.snapshot();
        assert_eq!(snap.kv_blocks_in_use, 2, "6 tokens at block size 4");
        assert_eq!(snap.kv_blocks_free, 6);
        assert_eq!(snap.kv_bytes_in_use, pool.bytes_in_use() as u64);
        assert!(snap.kv_bytes_in_use > 0);
        assert_eq!(snap.cow_copies, 0);
        assert_eq!(snap.pool_evictions, 1);

        // A dead pool (its model unloaded) silently leaves the gauges.
        drop(cache);
        let dead = KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks: 1000,
            ..KvPoolConfig::default()
        })
        .expect("pool");
        m.register_kv_pool(&dead);
        drop(dead);
        let snap = m.snapshot();
        assert_eq!(snap.kv_blocks_in_use, 0);
        assert_eq!(snap.kv_blocks_free, 8, "only the live pool is summed");
        assert_eq!(snap.kv_bytes_in_use, 0);
    }

    #[test]
    fn pool_gauges_slice_per_dtype_and_absorb_merges_labels() {
        use chipalign_model::ArchSpec;
        use chipalign_nn::{KvCache, KvDtype, KvPoolConfig, TinyLm};
        use chipalign_tensor::rng::Pcg32;

        let m = Metrics::new();
        let f32_pool = KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks: 8,
            ..KvPoolConfig::default()
        })
        .expect("pool");
        let int8_pool = KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks: 16,
            dtype: KvDtype::Int8,
        })
        .expect("pool");
        m.register_kv_pool(&f32_pool);
        m.register_kv_pool(&int8_pool);

        let mut arch = ArchSpec::tiny("metrics");
        arch.vocab_size = 99;
        let model = Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(1)).expect("model"));
        let mut a = KvCache::new_paged(&model, &f32_pool);
        a.prefill(&[5, 6, 7, 8, 9]).expect("prefill"); // 2 blocks
        let mut b = KvCache::new_paged(&model, &int8_pool);
        b.prefill(&[5, 6, 7]).expect("prefill"); // 1 block

        let snap = m.snapshot();
        assert_eq!(snap.kv_blocks_in_use, 3);
        assert_eq!(
            snap.kv_bytes_in_use,
            (f32_pool.bytes_in_use() + int8_pool.bytes_in_use()) as u64
        );
        assert_eq!(snap.kv_pool_dtypes.len(), 2, "one row per dtype");
        let f32_row = &snap.kv_pool_dtypes[0];
        let int8_row = &snap.kv_pool_dtypes[1];
        assert_eq!(f32_row.dtype, "f32");
        assert_eq!(f32_row.blocks_in_use, 2);
        assert_eq!(f32_row.blocks_free, 6);
        assert_eq!(int8_row.dtype, "int8");
        assert_eq!(int8_row.blocks_in_use, 1);
        assert_eq!(int8_row.blocks_free, 15);
        assert_eq!(
            f32_row.bytes_in_use + int8_row.bytes_in_use,
            snap.kv_bytes_in_use
        );

        // Fleet aggregation merges rows by label and sums the gauge.
        let mut fleet = MetricsSnapshot::default();
        fleet.absorb(&snap);
        fleet.absorb(&snap);
        assert_eq!(fleet.kv_bytes_in_use, 2 * snap.kv_bytes_in_use);
        assert_eq!(fleet.kv_pool_dtypes.len(), 2);
        assert_eq!(fleet.kv_pool_dtypes[0].blocks_in_use, 4);
        assert_eq!(fleet.kv_pool_dtypes[1].blocks_in_use, 2);
        assert_eq!(
            fleet.kv_pool_dtypes[1].bytes_in_use,
            2 * int8_row.bytes_in_use
        );
    }
}

//! Shared-prefix KV reuse: a bounded longest-match cache of prefilled
//! prompt prefixes.
//!
//! ChipAlign serving traffic is dominated by repeated prompt scaffolding —
//! the same system/instruction prefix in front of every chip-QA question
//! aimed at one `merge:<chip>+<instruct>@<λ>` model. Prefilling that
//! scaffold again for every session is pure waste: a KV cache row depends
//! only on the tokens fed before it (absolute rotary positions), so the
//! rows computed for one session's prefix are bit-for-bit the rows any
//! other session with the same leading tokens would compute. This module
//! stores those rows once and hands out [`KvCache::fork_from`] clones.
//!
//! Structure: one token trie per `(model allocation, KV storage dtype)`,
//! arena-allocated — a model served at both f32 and int8 KV (`spec` vs
//! `spec#kv8` share the allocation) keeps separate tries, since a
//! snapshot's rows are only bit-faithful to sessions of its own dtype.
//! Every
//! node corresponds to a token prefix; nodes that were actually prefilled
//! carry a donor [`KvCache`] snapshot. A lookup walks the query tokens
//! from the root and returns a fork of the **deepest** snapshot passed —
//! longest-match, so a cached full prompt also serves queries that share
//! only its scaffold. Bounds: entry count and total KV bytes, evicting the
//! least-recently-used snapshot (and pruning its now-bare trie branch)
//! when either would overflow.
//!
//! # Byte accounting under paged storage
//!
//! With a paged [`chipalign_nn::KvPool`], snapshots are block tables that
//! *alias* blocks: the donating session's fork costs zero KV bytes, and
//! two snapshots sharing a scaffold share its blocks. The byte budget
//! therefore charges **blocks, refcounted**: an inserted snapshot is
//! charged only for blocks no other entry already holds, and eviction
//! frees a block's bytes only when its last referencing entry leaves.
//! Contiguous snapshots (sessions without a pool) still charge their full
//! logical size. This is what makes a zero-copy prefix hit actually free —
//! the pre-pool accounting double-counted every aliased byte.
//!
//! Correctness note: the fork is validated again at adoption —
//! [`chipalign_nn::generate::StepDecoder::adopt_prefix`] re-checks the
//! token history and model identity — so a cache bug degrades to a served
//! error, never to a silently wrong transcript. Equivalence tests pin that
//! prefix-hit transcripts are byte-identical to cold prefills.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use chipalign_nn::{KvCache, KvDtype, TinyLm};

/// The KV dtype a snapshot (or an adopting session) stores rows at:
/// the pool's dtype for paged caches, f32 for contiguous ones.
/// Contiguous and f32-paged storage are interchangeable — both are
/// bit-identical — so they share one bucket; int8-paged snapshots are
/// kept apart, because handing an int8 fork to an f32 session (or vice
/// versa) would silently change which transcripts are bit-exact.
fn storage_dtype(cache: &KvCache) -> KvDtype {
    cache.pool().map_or(KvDtype::F32, |p| p.dtype())
}

/// Bounds for the [`PrefixCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// Maximum number of cached prefix snapshots across all models;
    /// `0` disables the cache entirely.
    pub max_entries: usize,
    /// Maximum total KV bytes across all snapshots (approximate, counting
    /// K/V rows). A single oversized snapshot is simply not admitted.
    pub max_total_bytes: usize,
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        PrefixCacheConfig {
            max_entries: 32,
            max_total_bytes: 64 * 1024 * 1024,
        }
    }
}

/// One arena-allocated trie node. `children` maps the next token to a
/// node index; a node holding `entry` is a cached snapshot whose token
/// path from the root is exactly `snapshot.tokens()`.
#[derive(Debug)]
struct Node {
    children: HashMap<u32, usize>,
    entry: Option<Entry>,
    /// Arena index of the parent (`usize::MAX` for roots) and the token
    /// edge leading here — lets eviction prune bare branches bottom-up.
    parent: usize,
    token: u32,
}

#[derive(Debug)]
struct Entry {
    snapshot: KvCache,
    /// LRU stamp: bumped on every hit from a monotonic counter.
    stamp: u64,
    /// Bytes charged for a contiguous snapshot (its full logical size);
    /// zero for paged snapshots, which are charged per shared block.
    flat_bytes: usize,
    /// The paged snapshot's `(block id, block bytes)` pairs; empty for
    /// contiguous snapshots. Referenced blocks are refcounted in
    /// [`Inner::block_refs`] so shared bytes are charged exactly once.
    block_ids: Vec<(u64, usize)>,
}

#[derive(Debug, Default)]
struct Inner {
    nodes: Vec<Node>,
    /// Free arena slots left behind by pruned nodes, reused before growth.
    free: Vec<usize>,
    /// How many cached entries reference each live KV block (keyed by the
    /// block's process-unique id). A block's bytes are charged when its
    /// refcount rises to one and freed when it falls to zero.
    block_refs: HashMap<u64, usize>,
    /// Root node per `(model allocation, KV storage dtype)`. The first
    /// key component is the model's `Arc` pointer; safe as an identity
    /// because every snapshot under a root holds a clone of that `Arc`,
    /// so the allocation cannot be reused while its subtree is non-empty
    /// (roots are dropped with their last snapshot). The dtype component
    /// keeps int8-KV snapshots from being donated to f32 sessions (and
    /// vice versa): one served model can run both dtypes at once
    /// (`spec` vs `spec#kv8` resolve to the same allocation).
    roots: HashMap<(usize, KvDtype), usize>,
    entries: usize,
    total_bytes: usize,
    clock: u64,
}

/// A bounded, thread-safe longest-match cache of prefilled prompt
/// prefixes. See the module docs for the design.
#[derive(Debug)]
pub struct PrefixCache {
    cfg: PrefixCacheConfig,
    inner: Mutex<Inner>,
}

impl PrefixCache {
    /// Creates an empty cache with the given bounds.
    #[must_use]
    pub fn new(cfg: PrefixCacheConfig) -> Self {
        PrefixCache {
            cfg,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether the cache is configured to store anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cfg.max_entries > 0 && self.cfg.max_total_bytes > 0
    }

    /// Number of cached snapshots.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.inner.lock().expect("prefix cache poisoned").entries
    }

    /// Approximate total KV bytes held by cached snapshots.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.inner
            .lock()
            .expect("prefix cache poisoned")
            .total_bytes
    }

    /// Longest-match lookup: returns a forked KV cache covering the
    /// longest cached prefix of `tokens` for this model allocation at
    /// the requested KV storage dtype, plus its length. `dtype` is the
    /// storage the adopting session decodes at (its pool's dtype, or
    /// [`KvDtype::F32`] for a contiguous session) — only same-dtype
    /// snapshots are donated, so an int8-KV fork can never leak into an
    /// f32 session's transcript or vice versa. Only *proper* prefixes
    /// are donated (`len < tokens.len()`): the adopting session must
    /// keep at least one token to prefill so it has logits to decode
    /// from. A cached entry equal to the whole query (the
    /// repeated-prompt case) still hits — its fork is trimmed to
    /// `tokens.len() - 1` positions. Hits refresh the snapshot's LRU
    /// stamp.
    #[must_use]
    pub fn lookup(
        &self,
        model: &Arc<TinyLm>,
        dtype: KvDtype,
        tokens: &[u32],
    ) -> Option<(KvCache, usize)> {
        if !self.enabled() || tokens.len() < 2 {
            return None;
        }
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        let mut node = *inner.roots.get(&(Arc::as_ptr(model) as usize, dtype))?;
        let mut best: Option<usize> = None;
        for &t in tokens {
            let Some(&child) = inner.nodes[node].children.get(&t) else {
                break;
            };
            node = child;
            if inner.nodes[node].entry.is_some() {
                best = Some(node);
            }
        }
        let best = best?;
        let stamp = inner.next_stamp();
        let entry = inner.nodes[best].entry.as_mut().expect("matched above");
        entry.stamp = stamp;
        // Belt and braces: identity keyed by pointer, verified by Arc.
        if !Arc::ptr_eq(entry.snapshot.model(), model) {
            return None;
        }
        // On int8-KV pools a cut strictly inside a sealed block would
        // dequantize→requantize the kept rows — lossy, so the adopted
        // session would no longer replay bit-identically to a cold
        // prefill. Round the donation down to the block boundary instead;
        // a donation rounded to nothing is a miss.
        let len = entry
            .snapshot
            .aligned_fork_len(entry.snapshot.len().min(tokens.len() - 1));
        if len == 0 {
            return None;
        }
        let fork = entry.snapshot.fork_from(len).ok()?;
        Some((fork, len))
    }

    /// Inserts a snapshot of `cache`'s full contents, keyed by its token
    /// history. No-op if the cache is disabled, the snapshot is empty or
    /// its *newly charged* bytes alone exceed the byte budget, or an
    /// identical prefix is already cached (its stamp is refreshed
    /// instead). Paged snapshots are charged only for blocks no existing
    /// entry holds — a fork of an already-cached prefix is free. Evicts
    /// least-recently-used snapshots until both bounds hold.
    pub fn insert(&self, cache: &KvCache) {
        if !self.enabled() || cache.is_empty() {
            return;
        }
        let Ok(snapshot) = cache.fork_from(cache.len()) else {
            return;
        };
        let mut inner = self.inner.lock().expect("prefix cache poisoned");
        // Charge = bytes this entry adds: the full logical size for a
        // contiguous snapshot, or the bytes of blocks not yet referenced
        // by any cached entry for a paged one. Computed before touching
        // the trie so an oversized refusal allocates nothing.
        let block_ids = snapshot.block_ids();
        let flat_bytes = if block_ids.is_empty() {
            snapshot.kv_bytes()
        } else {
            0
        };
        let charge: usize = flat_bytes
            + block_ids
                .iter()
                .filter(|(id, _)| !inner.block_refs.contains_key(id))
                .map(|&(_, bytes)| bytes)
                .sum::<usize>();
        if charge > self.cfg.max_total_bytes {
            return;
        }
        let key = (
            Arc::as_ptr(snapshot.model()) as usize,
            storage_dtype(&snapshot),
        );
        let root = match inner.roots.get(&key) {
            Some(&r) => r,
            None => {
                let r = inner.alloc(usize::MAX, 0);
                inner.roots.insert(key, r);
                r
            }
        };
        let mut node = root;
        for &t in snapshot.tokens() {
            node = match inner.nodes[node].children.get(&t) {
                Some(&child) => child,
                None => {
                    let child = inner.alloc(node, t);
                    inner.nodes[node].children.insert(t, child);
                    child
                }
            };
        }
        let stamp = inner.next_stamp();
        if let Some(entry) = inner.nodes[node].entry.as_mut() {
            entry.stamp = stamp;
            return;
        }
        inner.entries += 1;
        inner.total_bytes += charge;
        for &(id, _) in &block_ids {
            *inner.block_refs.entry(id).or_insert(0) += 1;
        }
        inner.nodes[node].entry = Some(Entry {
            snapshot,
            stamp,
            flat_bytes,
            block_ids,
        });
        while inner.entries > self.cfg.max_entries || inner.total_bytes > self.cfg.max_total_bytes {
            // The just-inserted snapshot is the most recent; bounds are
            // restored by evicting older ones (it alone fits, checked
            // above).
            if !inner.evict_lru() {
                break;
            }
        }
    }

    /// Evicts the least-recently-used snapshot unconditionally. The
    /// scheduler calls this under KV-pool pressure: dropping a cached
    /// snapshot releases its block aliases so admission can hand the
    /// freed blocks to a live session. Returns whether anything was
    /// evicted.
    pub fn evict_one(&self) -> bool {
        self.inner
            .lock()
            .expect("prefix cache poisoned")
            .evict_lru()
    }
}

impl Inner {
    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn alloc(&mut self, parent: usize, token: u32) -> usize {
        let node = Node {
            children: HashMap::new(),
            entry: None,
            parent,
            token,
        };
        if let Some(slot) = self.free.pop() {
            self.nodes[slot] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Evicts the least-recently-used snapshot and prunes its branch up to
    /// the nearest ancestor that still serves another snapshot or fork.
    /// Returns false when the cache holds nothing to evict.
    fn evict_lru(&mut self) -> bool {
        let mut victim: Option<(usize, u64)> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(entry) = &n.entry {
                if victim.is_none_or(|(_, stamp)| entry.stamp < stamp) {
                    victim = Some((i, entry.stamp));
                }
            }
        }
        let Some((idx, _)) = victim else {
            return false;
        };
        let entry = self.nodes[idx].entry.take().expect("victim holds entry");
        self.entries -= 1;
        // Free the contiguous charge plus every block whose last
        // referencing entry this was — bytes still shared with a surviving
        // entry stay charged (they are still held).
        let mut freed = entry.flat_bytes;
        for &(id, bytes) in &entry.block_ids {
            let refs = self
                .block_refs
                .get_mut(&id)
                .expect("evicted entry's blocks are refcounted");
            *refs -= 1;
            if *refs == 0 {
                self.block_refs.remove(&id);
                freed += bytes;
            }
        }
        self.total_bytes -= freed;
        drop(entry);
        // Prune bottom-up: remove nodes that now carry no entry and no
        // children. Roots are dropped too so a stale model pointer can
        // never match a future allocation at the same address.
        let mut node = idx;
        while node != usize::MAX {
            let n = &self.nodes[node];
            if n.entry.is_some() || !n.children.is_empty() {
                break;
            }
            let parent = n.parent;
            let token = n.token;
            if parent == usize::MAX {
                self.roots.retain(|_, &mut r| r != node);
            } else {
                self.nodes[parent].children.remove(&token);
            }
            self.nodes[node].children = HashMap::new();
            self.free.push(node);
            node = parent;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;

    fn model(seed: u64) -> Arc<TinyLm> {
        let mut arch = ArchSpec::tiny("prefix");
        arch.vocab_size = 99;
        Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(seed)).expect("model"))
    }

    fn prefilled(m: &Arc<TinyLm>, tokens: &[u32]) -> KvCache {
        let mut c = KvCache::new(m);
        c.prefill(tokens).expect("fits window");
        c
    }

    #[test]
    fn longest_match_wins_and_is_a_proper_prefix() {
        let m = model(1);
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        cache.insert(&prefilled(&m, &[5, 6]));
        cache.insert(&prefilled(&m, &[5, 6, 7, 8]));
        assert_eq!(cache.entries(), 2);

        // Query extending the longer entry: longest match.
        let (fork, len) = cache
            .lookup(&m, KvDtype::F32, &[5, 6, 7, 8, 9])
            .expect("hit");
        assert_eq!(len, 4);
        assert_eq!(fork.tokens(), &[5, 6, 7, 8]);

        // Query equal to the longer entry (a repeated prompt): the entry
        // hits, trimmed to the longest *proper* prefix of the query.
        let (fork, len) = cache.lookup(&m, KvDtype::F32, &[5, 6, 7, 8]).expect("hit");
        assert_eq!(len, 3);
        assert_eq!(fork.tokens(), &[5, 6, 7]);

        // Diverging query falls back to the shared stem.
        let (_, len) = cache.lookup(&m, KvDtype::F32, &[5, 6, 9, 9]).expect("hit");
        assert_eq!(len, 2);

        // No shared prefix at all.
        assert!(cache.lookup(&m, KvDtype::F32, &[9, 9, 9]).is_none());
        // Too short to leave a pending token.
        assert!(cache.lookup(&m, KvDtype::F32, &[5]).is_none());
    }

    #[test]
    fn forks_are_independent_of_the_cached_snapshot() {
        let m = model(1);
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        cache.insert(&prefilled(&m, &[5, 6, 7]));
        let (mut fork, len) = cache.lookup(&m, KvDtype::F32, &[5, 6, 7, 8]).expect("hit");
        assert_eq!(len, 3);
        // Advancing the fork must not disturb the cached snapshot.
        fork.decode_step(42).expect("ok");
        let (again, len) = cache.lookup(&m, KvDtype::F32, &[5, 6, 7, 8]).expect("hit");
        assert_eq!(len, 3);
        assert_eq!(again.tokens(), &[5, 6, 7]);
    }

    #[test]
    fn models_do_not_cross_pollinate() {
        let a = model(1);
        let b = model(2);
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        cache.insert(&prefilled(&a, &[5, 6, 7]));
        assert!(cache.lookup(&b, KvDtype::F32, &[5, 6, 7, 8]).is_none());
        let (fork, _) = cache.lookup(&a, KvDtype::F32, &[5, 6, 7, 8]).expect("hit");
        assert!(Arc::ptr_eq(fork.model(), &a));
    }

    #[test]
    fn entry_bound_evicts_least_recently_used() {
        let m = model(1);
        let cache = PrefixCache::new(PrefixCacheConfig {
            max_entries: 2,
            max_total_bytes: usize::MAX,
        });
        cache.insert(&prefilled(&m, &[5, 6]));
        cache.insert(&prefilled(&m, &[7, 8]));
        // Touch [5,6] so [7,8] becomes the LRU.
        assert!(cache.lookup(&m, KvDtype::F32, &[5, 6, 9]).is_some());
        cache.insert(&prefilled(&m, &[9, 10]));
        assert_eq!(cache.entries(), 2);
        assert!(
            cache.lookup(&m, KvDtype::F32, &[5, 6, 9]).is_some(),
            "recently used kept"
        );
        assert!(
            cache.lookup(&m, KvDtype::F32, &[9, 10, 11]).is_some(),
            "new entry kept"
        );
        assert!(
            cache.lookup(&m, KvDtype::F32, &[7, 8, 9]).is_none(),
            "LRU evicted"
        );
    }

    #[test]
    fn byte_bound_evicts_and_oversized_snapshots_are_refused() {
        let m = model(1);
        let unit = prefilled(&m, &[5]).kv_bytes();
        let cache = PrefixCache::new(PrefixCacheConfig {
            max_entries: usize::MAX,
            max_total_bytes: 5 * unit,
        });
        cache.insert(&prefilled(&m, &[5, 6])); // 2 units
        cache.insert(&prefilled(&m, &[7, 8, 9])); // 3 units -> total 5
        assert_eq!(cache.total_bytes(), 5 * unit);
        // 2 more units overflow: the oldest entry goes.
        cache.insert(&prefilled(&m, &[10, 11]));
        assert!(cache.total_bytes() <= 5 * unit);
        assert!(
            cache.lookup(&m, KvDtype::F32, &[5, 6, 7]).is_none(),
            "oldest evicted"
        );
        assert!(cache.lookup(&m, KvDtype::F32, &[7, 8, 9, 10]).is_some());
        // A snapshot larger than the whole budget is refused outright.
        let big = prefilled(&m, &(0..8).map(|i| 5 + i).collect::<Vec<_>>());
        assert!(big.kv_bytes() > 5 * unit);
        let before = cache.entries();
        cache.insert(&big);
        assert_eq!(cache.entries(), before);
    }

    #[test]
    fn duplicate_insert_refreshes_instead_of_duplicating() {
        let m = model(1);
        let cache = PrefixCache::new(PrefixCacheConfig {
            max_entries: 2,
            max_total_bytes: usize::MAX,
        });
        cache.insert(&prefilled(&m, &[5, 6]));
        cache.insert(&prefilled(&m, &[7, 8]));
        // Re-inserting [5,6] refreshes its stamp: [7,8] is now the LRU.
        cache.insert(&prefilled(&m, &[5, 6]));
        assert_eq!(cache.entries(), 2);
        cache.insert(&prefilled(&m, &[9, 10]));
        assert!(
            cache.lookup(&m, KvDtype::F32, &[5, 6, 9]).is_some(),
            "refreshed survives"
        );
        assert!(cache.lookup(&m, KvDtype::F32, &[7, 8, 9]).is_none());
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let m = model(1);
        let cache = PrefixCache::new(PrefixCacheConfig {
            max_entries: 0,
            max_total_bytes: usize::MAX,
        });
        assert!(!cache.enabled());
        cache.insert(&prefilled(&m, &[5, 6]));
        assert_eq!(cache.entries(), 0);
        assert!(cache.lookup(&m, KvDtype::F32, &[5, 6, 7]).is_none());
    }

    #[test]
    fn paged_snapshots_sharing_blocks_are_charged_once() {
        use chipalign_nn::{KvPool, KvPoolConfig};
        let m = model(1);
        let pool = KvPool::new(KvPoolConfig {
            block_tokens: 2,
            max_blocks: 64,
            ..KvPoolConfig::default()
        })
        .expect("pool");
        let arch = m.arch();
        let bb = pool.block_bytes(arch.n_layers, arch.d_model);
        let cache = PrefixCache::new(PrefixCacheConfig {
            max_entries: 8,
            max_total_bytes: usize::MAX,
        });

        // Donor: 4 tokens = blocks [b0, b1].
        let mut donor = KvCache::new_paged(&m, &pool);
        donor.prefill(&[5, 6, 7, 8]).expect("prefill");
        cache.insert(&donor);
        assert_eq!(
            cache.total_bytes(),
            2 * bb,
            "first entry charges both blocks"
        );

        // A fork sharing b0, extended with one fresh block b2. Inserting
        // it must charge only the unshared block.
        let mut fork = donor.fork_from(2).expect("fork");
        fork.prefill_chunk(&[9, 10]).expect("extend");
        cache.insert(&fork);
        assert_eq!(cache.entries(), 2);
        assert_eq!(
            cache.total_bytes(),
            3 * bb,
            "shared block b0 must not be double-counted"
        );

        // Evicting the older entry frees only bytes no survivor holds:
        // b1 goes, b0 stays charged (the fork's entry still aliases it).
        assert!(cache.evict_one());
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.total_bytes(), 2 * bb, "b0 stays charged, b1 freed");
        assert!(cache.evict_one());
        assert_eq!(cache.total_bytes(), 0);
        assert!(!cache.evict_one(), "nothing left to evict");
    }

    #[test]
    fn paged_lookup_forks_allocate_zero_blocks() {
        use chipalign_nn::{KvPool, KvPoolConfig};
        let m = model(1);
        let pool = KvPool::new(KvPoolConfig {
            block_tokens: 2,
            max_blocks: 64,
            ..KvPoolConfig::default()
        })
        .expect("pool");
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        let mut donor = KvCache::new_paged(&m, &pool);
        donor.prefill(&[5, 6, 7, 8]).expect("prefill");
        cache.insert(&donor);
        drop(donor); // the cached snapshot keeps the blocks alive
        let held = pool.blocks_in_use();
        assert_eq!(held, 2);
        let (fork, len) = cache
            .lookup(&m, KvDtype::F32, &[5, 6, 7, 8, 9])
            .expect("hit");
        assert_eq!(len, 4);
        assert_eq!(
            pool.blocks_in_use(),
            held,
            "a prefix hit must allocate zero new KV blocks"
        );
        drop(fork);
        assert_eq!(pool.blocks_in_use(), held);
    }

    #[test]
    fn int8_donations_round_down_to_sealed_block_boundaries() {
        use chipalign_nn::{KvPool, KvPoolConfig};
        let m = model(1);
        let pool = KvPool::new(KvPoolConfig {
            block_tokens: 2,
            max_blocks: 64,
            dtype: KvDtype::Int8,
        })
        .expect("pool");
        let cache = PrefixCache::new(PrefixCacheConfig::default());
        let mut donor = KvCache::new_paged(&m, &pool);
        donor.prefill(&[5, 6, 7, 8]).expect("prefill"); // 2 sealed blocks
        cache.insert(&donor);

        // Boundary-sized donation passes through untouched.
        let (fork, len) = cache
            .lookup(&m, KvDtype::Int8, &[5, 6, 7, 8, 9])
            .expect("hit");
        assert_eq!(len, 4);
        assert_eq!(fork.tokens(), &[5, 6, 7, 8]);

        // A cut inside sealed block 1 (len 3) rounds down to the boundary,
        // so the adopted session replays bit-identically to a cold prefill.
        let (fork, len) = cache.lookup(&m, KvDtype::Int8, &[5, 6, 7, 8]).expect("hit");
        assert_eq!(len, 2, "mid-sealed-block donations round down");
        assert_eq!(fork.tokens(), &[5, 6]);

        // A donation rounded to nothing is a miss, not a zero-length fork.
        assert!(cache.lookup(&m, KvDtype::Int8, &[5, 6]).is_none());
    }

    #[test]
    fn kv_dtypes_do_not_cross_pollinate() {
        use chipalign_nn::{KvPool, KvPoolConfig};
        let m = model(1);
        let cache = PrefixCache::new(PrefixCacheConfig::default());

        // One model allocation serving both dtypes at once (`spec` vs
        // `spec#kv8`): each donation lands in its own bucket.
        cache.insert(&prefilled(&m, &[5, 6, 7])); // contiguous → f32 bucket
        let pool = KvPool::new(KvPoolConfig {
            block_tokens: 2,
            max_blocks: 64,
            dtype: KvDtype::Int8,
        })
        .expect("pool");
        let mut q8_donor = KvCache::new_paged(&m, &pool);
        q8_donor.prefill(&[5, 6, 7, 8]).expect("prefill");
        cache.insert(&q8_donor);
        assert_eq!(cache.entries(), 2);

        // An f32 session sees only the f32 snapshot — never the deeper
        // int8 one, which would silently break its bit-exactness.
        let (fork, len) = cache
            .lookup(&m, KvDtype::F32, &[5, 6, 7, 8, 9])
            .expect("hit");
        assert_eq!(len, 3, "the deeper int8 entry must be invisible at f32");
        assert!(fork.pool().is_none(), "f32 hit hands back the f32 snapshot");

        // And the int8 session sees only its own bucket.
        let (fork, len) = cache
            .lookup(&m, KvDtype::Int8, &[5, 6, 7, 8, 9])
            .expect("hit");
        assert_eq!(len, 4);
        assert_eq!(
            fork.pool().map(|p| p.dtype()),
            Some(KvDtype::Int8),
            "int8 hit hands back the int8 snapshot"
        );

        // A prompt cached only at f32 is a clean miss at int8.
        cache.insert(&prefilled(&m, &[20, 21, 22]));
        assert!(cache.lookup(&m, KvDtype::Int8, &[20, 21, 22, 23]).is_none());
    }

    #[test]
    fn eviction_prunes_shared_stems_only_when_bare() {
        let m = model(1);
        let cache = PrefixCache::new(PrefixCacheConfig {
            max_entries: 2,
            max_total_bytes: usize::MAX,
        });
        // Two entries sharing the stem [5, 6].
        cache.insert(&prefilled(&m, &[5, 6, 7]));
        cache.insert(&prefilled(&m, &[5, 6, 8]));
        // Evict the first by inserting a third.
        assert!(cache.lookup(&m, KvDtype::F32, &[5, 6, 8, 9]).is_some()); // refresh second
        cache.insert(&prefilled(&m, &[9, 10]));
        // The shared stem must still route to the surviving sibling.
        let (_, len) = cache
            .lookup(&m, KvDtype::F32, &[5, 6, 8, 9])
            .expect("sibling survives");
        assert_eq!(len, 3);
        assert!(
            cache.lookup(&m, KvDtype::F32, &[5, 6, 7, 9]).is_none(),
            "victim gone"
        );
    }
}

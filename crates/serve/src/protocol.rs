//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Every message is one JSON object on one line, terminated by `\n`. A
//! client writes a [`Request`] line and reads exactly one [`Response`] line
//! back; requests on one connection are handled in order. The `type` field
//! discriminates variants, e.g.:
//!
//! ```text
//! → {"type":"generate","model":"merge:eda-qwen+instruct-qwen@0.6","prompt":"Q:...;A:"}
//! ← {"type":"generation","model":"merge:eda-qwen+instruct-qwen@0.6000","text":"...","tokens":24,...}
//! ```

use serde::{Deserialize, Serialize};

use chipalign_nn::generate::GenerateConfig;

use crate::ServeError;

/// Protocol version reported by `ping`. Version 2 added the
/// fault-tolerance surface (the `retry_attempt` generate field and the
/// fault counters in metrics snapshots); version 3 adds the fleet surface:
/// `fleet`/`drain` requests answered by `chipalign-router`, replica status
/// reporting, and raw histogram buckets in metrics snapshots so fleet
/// aggregation can recompute quantiles. The quantization surface (the
/// `#int8` spec suffix, the per-model `models` detail rows, and the
/// `weights_bytes`/`simd_backend` snapshot fields) is additive within
/// version 3. Everything is additive with serde defaults, so older clients
/// interoperate with newer servers and vice versa; a single-process
/// `chipalign-serve` answers the fleet requests with a structured
/// `bad_request` instead of dropping the connection.
pub const PROTOCOL_VERSION: u32 = 3;

/// A client-to-server message.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Request {
    /// Run one generation session.
    Generate(GenerateRequest),
    /// List loaded models and the zoo models that can be served by slug.
    Models,
    /// Materialize (train/load/merge as needed) a model without generating,
    /// so a later `generate` hits a warm registry — this is the hot-swap
    /// path for rolling out a new λ.
    Load {
        /// Model spec (zoo slug, `merge:<chip>+<instruct>@<λ>`, or
        /// `file:<path>`).
        model: String,
    },
    /// Evict a previously materialized model from the registry cache.
    Unload {
        /// The spec or registered name to evict.
        model: String,
    },
    /// Fetch a metrics snapshot.
    Metrics,
    /// Liveness check.
    Ping,
    /// List replica health states. Answered by `chipalign-router`; a
    /// single-process server replies with a structured `bad_request`.
    Fleet,
    /// Mark one replica draining: it finishes in-flight sessions but
    /// receives no new ones, and its hash-ring range is rebalanced onto
    /// its neighbors. Router-only, like [`Request::Fleet`].
    Drain {
        /// The replica's address (`host:port`) as reported by `fleet`.
        replica: String,
    },
}

/// Parameters for one generation session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerateRequest {
    /// Model spec (zoo slug, `merge:<chip>+<instruct>@<λ>`, `file:<path>`,
    /// or a name registered via the API).
    pub model: String,
    /// The text prompt.
    pub prompt: String,
    /// Maximum number of new tokens (clamped to the server's cap).
    #[serde(default = "default_max_new_tokens")]
    pub max_new_tokens: usize,
    /// Softmax temperature; `0` is greedy.
    #[serde(default)]
    pub temperature: f32,
    /// Top-k truncation (`0` disables).
    #[serde(default)]
    pub top_k: usize,
    /// Nucleus mass (`1.0` disables).
    #[serde(default = "default_top_p")]
    pub top_p: f32,
    /// Stop at `<eos>`.
    #[serde(default = "default_true")]
    pub stop_at_eos: bool,
    /// Sampling seed.
    #[serde(default)]
    pub seed: u64,
    /// Per-request deadline in milliseconds, measured from admission. When
    /// absent, the server's default applies.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Which retry of this request this is (`0` = first attempt). Set by
    /// [`crate::client::Retrier`]; the server counts non-zero attempts in
    /// the `retries_attempted` metric.
    #[serde(default)]
    pub retry_attempt: u32,
}

fn default_max_new_tokens() -> usize {
    64
}

fn default_top_p() -> f32 {
    1.0
}

fn default_true() -> bool {
    true
}

impl GenerateRequest {
    /// A greedy request with server defaults for everything else.
    #[must_use]
    pub fn greedy(model: &str, prompt: &str, max_new_tokens: usize) -> Self {
        GenerateRequest {
            model: model.to_string(),
            prompt: prompt.to_string(),
            max_new_tokens,
            temperature: 0.0,
            top_k: 0,
            top_p: 1.0,
            stop_at_eos: true,
            seed: 0,
            deadline_ms: None,
            retry_attempt: 0,
        }
    }

    /// The decoding configuration this request asks for, with the token
    /// budget clamped to `cap`.
    #[must_use]
    pub fn decode_config(&self, cap: usize) -> GenerateConfig {
        GenerateConfig {
            max_new_tokens: self.max_new_tokens.min(cap),
            temperature: self.temperature,
            top_k: self.top_k,
            top_p: self.top_p,
            stop_at_eos: self.stop_at_eos,
            seed: self.seed,
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Response {
    /// A finished generation.
    Generation(Generation),
    /// Registry listing.
    Models {
        /// Cache keys of every materialized model.
        loaded: Vec<String>,
        /// Zoo slugs that can be requested directly or as merge
        /// ingredients.
        zoo: Vec<String>,
        /// Per-model detail rows (dtype and weight bytes), index-free and
        /// keyed by `model`. Empty from older servers.
        #[serde(default)]
        models: Vec<LoadedModel>,
    },
    /// A `load` completed; `model` is the canonical cache key.
    Loaded {
        /// Canonical registry key of the materialized model.
        model: String,
    },
    /// An `unload` completed.
    Unloaded {
        /// The spec that was evicted.
        model: String,
        /// Whether anything was actually removed.
        evicted: bool,
    },
    /// A metrics snapshot.
    Metrics(crate::metrics::MetricsSnapshot),
    /// Reply to `ping`.
    Pong {
        /// Protocol version.
        version: u32,
    },
    /// Reply to `fleet`: one status per known replica.
    Fleet {
        /// Per-replica health, in ring registration order.
        replicas: Vec<ReplicaStatus>,
    },
    /// Reply to `drain`.
    Drained {
        /// The replica address that was asked to drain.
        replica: String,
        /// Whether the router knew that replica (an unknown address is
        /// acknowledged but changes nothing).
        known: bool,
    },
    /// The request failed.
    Error(WireError),
}

/// One materialized model's detail row in a `models` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadedModel {
    /// Canonical registry key.
    pub model: String,
    /// Decode dtype: `"f32"`, or `"int8"` for a `#int8` variant.
    pub dtype: String,
    /// Weight bytes resident at that dtype.
    #[serde(default)]
    pub weights_bytes: u64,
}

/// Health of one replica as seen by the router.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaStatus {
    /// The replica's address (`host:port`).
    pub addr: String,
    /// Current health state.
    pub state: ReplicaHealth,
    /// Requests the router currently has in flight against this replica.
    #[serde(default)]
    pub inflight: u64,
    /// Consecutive probe/request failures since the last success.
    #[serde(default)]
    pub consecutive_failures: u32,
}

/// The router's three-state replica health model, plus the drain state.
///
/// `Healthy` replicas take traffic in ring order. `Degraded` replicas
/// (recent `overloaded` replies or probe hiccups) are only tried after
/// every healthy candidate. `Down` replicas (consecutive probe failures
/// past the threshold) are last-resort candidates until a probe succeeds.
/// `Draining` replicas finish in-flight sessions but are excluded from
/// candidate lists entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ReplicaHealth {
    /// Probes pass; traffic routes here in ring order.
    Healthy,
    /// Saturated or flaky; used only when no healthy candidate remains.
    Degraded,
    /// Probes failing; assumed dead until one succeeds.
    Down,
    /// Administratively draining; receives no new sessions.
    Draining,
}

/// One finished generation session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Generation {
    /// Canonical registry key of the model that served the request.
    pub model: String,
    /// The generated text (special tokens stripped).
    pub text: String,
    /// Number of new tokens produced.
    pub tokens: usize,
    /// Number of prompt tokens consumed.
    pub prompt_tokens: usize,
    /// Why the session ended.
    pub finish: FinishReason,
    /// Time spent queued before the first decode slice, in milliseconds.
    pub queue_ms: u64,
    /// Total time from admission to completion, in milliseconds.
    pub latency_ms: u64,
}

/// Why a generation session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FinishReason {
    /// The model emitted `<eos>`.
    Eos,
    /// The token budget was exhausted.
    Length,
}

/// A structured error on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

/// Machine-readable error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ErrorCode {
    /// The request was malformed or semantically invalid.
    BadRequest,
    /// The model spec names nothing servable.
    UnknownModel,
    /// Admission control rejected the request; retry later.
    Overloaded,
    /// The per-request deadline expired.
    DeadlineExceeded,
    /// The server is draining.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

/// Serializes `msg` as one newline-terminated JSON line.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] if serialization fails (it cannot for
/// these types in practice) and [`ServeError::Io`] on write failure.
pub fn write_line<W: std::io::Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), ServeError> {
    let json = serde_json::to_string(msg).map_err(|e| ServeError::Protocol {
        detail: format!("serialize: {e}"),
    })?;
    w.write_all(json.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()?;
    Ok(())
}

/// Parses one JSON line into a message.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] for malformed JSON.
pub fn parse_line<T: for<'de> Deserialize<'de>>(line: &str) -> Result<T, ServeError> {
    serde_json::from_str(line.trim()).map_err(|e| ServeError::Protocol {
        detail: format!("malformed message: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_json() {
        let req = Request::Generate(GenerateRequest::greedy("instruct-qwen", "Q:x;A:", 16));
        let json = serde_json::to_string(&req).expect("serialize");
        assert!(json.contains("\"type\":\"generate\""));
        let back: Request = parse_line(&json).expect("parse");
        match back {
            Request::Generate(g) => {
                assert_eq!(g.model, "instruct-qwen");
                assert_eq!(g.max_new_tokens, 16);
                assert!(g.stop_at_eos);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn generate_request_defaults_apply() {
        let g: GenerateRequest =
            parse_line(r#"{"model":"instruct-qwen","prompt":"hi"}"#).expect("parse");
        assert_eq!(g.max_new_tokens, 64);
        assert_eq!(g.temperature, 0.0);
        assert_eq!(g.top_p, 1.0);
        assert!(g.stop_at_eos);
        assert!(g.deadline_ms.is_none());
        assert_eq!(g.retry_attempt, 0, "v1 requests parse as first attempts");
        let cfg = g.decode_config(32);
        assert_eq!(cfg.max_new_tokens, 32, "budget clamps to the server cap");
        cfg.validate().expect("defaults are valid");
    }

    #[test]
    fn error_codes_serialize_snake_case() {
        let resp = Response::Error(WireError {
            code: ErrorCode::DeadlineExceeded,
            detail: "too slow".into(),
        });
        let json = serde_json::to_string(&resp).expect("serialize");
        assert!(json.contains("\"deadline_exceeded\""));
        let back: Response = parse_line(&json).expect("parse");
        match back {
            Response::Error(w) => assert_eq!(w.code, ErrorCode::DeadlineExceeded),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn malformed_line_is_a_protocol_error() {
        let r: Result<Request, _> = parse_line("{not json");
        assert!(matches!(r, Err(ServeError::Protocol { .. })));
    }

    #[test]
    fn fleet_requests_round_trip() {
        let json = serde_json::to_string(&Request::Fleet).expect("serialize");
        assert!(json.contains("\"type\":\"fleet\""));
        assert!(matches!(
            parse_line::<Request>(&json).expect("parse"),
            Request::Fleet
        ));

        let drain = Request::Drain {
            replica: "127.0.0.1:7001".to_string(),
        };
        let json = serde_json::to_string(&drain).expect("serialize");
        assert!(json.contains("\"type\":\"drain\""));
        match parse_line::<Request>(&json).expect("parse") {
            Request::Drain { replica } => assert_eq!(replica, "127.0.0.1:7001"),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn replica_status_round_trips_snake_case() {
        let resp = Response::Fleet {
            replicas: vec![
                ReplicaStatus {
                    addr: "127.0.0.1:7001".to_string(),
                    state: ReplicaHealth::Healthy,
                    inflight: 3,
                    consecutive_failures: 0,
                },
                ReplicaStatus {
                    addr: "127.0.0.1:7002".to_string(),
                    state: ReplicaHealth::Draining,
                    inflight: 1,
                    consecutive_failures: 2,
                },
            ],
        };
        let json = serde_json::to_string(&resp).expect("serialize");
        assert!(json.contains("\"healthy\""));
        assert!(json.contains("\"draining\""));
        match parse_line::<Response>(&json).expect("parse") {
            Response::Fleet { replicas } => {
                assert_eq!(replicas.len(), 2);
                assert_eq!(replicas[0].state, ReplicaHealth::Healthy);
                assert_eq!(replicas[1].state, ReplicaHealth::Draining);
                assert_eq!(replicas[1].consecutive_failures, 2);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn models_reply_detail_rows_are_additive() {
        let resp = Response::Models {
            loaded: vec!["canary".into(), "canary#int8".into()],
            zoo: vec!["instruct-qwen".into()],
            models: vec![
                LoadedModel {
                    model: "canary".into(),
                    dtype: "f32".into(),
                    weights_bytes: 4_000,
                },
                LoadedModel {
                    model: "canary#int8".into(),
                    dtype: "int8".into(),
                    weights_bytes: 1_200,
                },
            ],
        };
        let json = serde_json::to_string(&resp).expect("serialize");
        match parse_line::<Response>(&json).expect("parse") {
            Response::Models { models, .. } => {
                assert_eq!(models.len(), 2);
                assert_eq!(models[1].dtype, "int8");
                assert_eq!(models[1].weights_bytes, 1_200);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // An older server's reply (no detail rows) still parses.
        let old = r#"{"type":"models","loaded":["canary"],"zoo":[]}"#;
        match parse_line::<Response>(old).expect("parse") {
            Response::Models { loaded, models, .. } => {
                assert_eq!(loaded, vec!["canary".to_string()]);
                assert!(models.is_empty());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn replica_status_defaults_are_additive() {
        // A minimal status (older router) still parses: gauges default.
        let s: ReplicaStatus =
            parse_line(r#"{"addr":"127.0.0.1:7001","state":"down"}"#).expect("parse");
        assert_eq!(s.state, ReplicaHealth::Down);
        assert_eq!(s.inflight, 0);
        assert_eq!(s.consecutive_failures, 0);
    }
}

//! The model registry: every checkpoint the server can put behind a spec.
//!
//! Three kinds of spec resolve to a servable model:
//!
//! * **Zoo slugs** (`instruct-qwen`, `eda-qwen`, `chipnemo`, …) — trained
//!   on demand by [`chipalign_pipeline::zoo::Zoo`] and loaded from its
//!   on-disk cache (`artifacts/zoo`) when present.
//! * **Geodesic merges** (`merge:<chip>+<instruct>@<λ>`) — materialized on
//!   demand with [`chipalign_merge::GeodesicMerge`] from two zoo
//!   ingredients and cached per λ, so hot-swapping a served model to a new
//!   interpolation point is one `load` request, no restart.
//! * **Checkpoint files** (`file:<path>.calt`) — loaded with
//!   [`chipalign_model::format`].
//!
//! All materialized models live behind `Arc`s in one cache keyed by a
//! canonical spec string; [`ModelRegistry::register`] inserts programmatic
//! models (tests, canaries) under arbitrary names.
//!
//! # Integrity
//!
//! The registry never serves a checkpoint it hasn't vetted: merged models
//! are validated ([`Checkpoint::validate`]) and scanned for non-finite
//! weights before they are cached, and a poisoned merge is reported as a
//! structured error rather than entering the cache. With a persist
//! directory configured ([`ModelRegistry::with_persist_dir`]), merges are
//! saved crash-safely and a torn or corrupted persisted file is detected
//! at load, counted in `checksum_failures`, removed, and rebuilt from its
//! ingredients.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use chipalign_merge::{GeodesicMerge, Merger};
use chipalign_model::{format, Checkpoint, ModelError};
use chipalign_nn::TinyLm;
use chipalign_pipeline::zoo::{Backbone, Zoo, ZooModel};

use crate::metrics::Metrics;
use crate::ServeError;

/// Whether a load failure means the bytes on disk are damaged (as opposed
/// to e.g. a plain I/O error), so the file is worth deleting and
/// rebuilding.
fn is_integrity_error(e: &ModelError) -> bool {
    matches!(
        e,
        ModelError::Corrupt { .. }
            | ModelError::ChecksumMismatch { .. }
            | ModelError::NonFinite { .. }
    )
}

/// Every zoo model the registry can name.
#[must_use]
pub fn all_zoo_models() -> Vec<ZooModel> {
    let mut models = Vec::new();
    for b in [
        Backbone::QwenTiny,
        Backbone::LlamaTiny,
        Backbone::LlamaLarge,
    ] {
        models.push(ZooModel::Base(b));
        models.push(ZooModel::Instruct(b));
    }
    models.push(ZooModel::Eda(Backbone::QwenTiny));
    models.push(ZooModel::Eda(Backbone::LlamaTiny));
    models.push(ZooModel::ChipNemo);
    models.push(ZooModel::GeneralStrong);
    models.push(ZooModel::RagEda);
    models
}

fn zoo_model_from_slug(slug: &str) -> Option<ZooModel> {
    all_zoo_models().into_iter().find(|m| m.slug() == slug)
}

/// A parsed model specification.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A zoo model by slug.
    Zoo(ZooModel),
    /// A ChipAlign geodesic merge of two zoo models at `lambda`.
    Merged {
        /// The domain-adapted ingredient (first merge argument).
        chip: ZooModel,
        /// The instruction-aligned ingredient.
        instruct: ZooModel,
        /// The interpolation point in `[0, 1]`.
        lambda: f32,
    },
    /// A checkpoint file in the crate's `.calt` format.
    File(PathBuf),
}

impl ModelSpec {
    /// Parses a spec string.
    ///
    /// Grammar: `<zoo-slug>` | `merge:<chip-slug>+<instruct-slug>@<λ>` |
    /// `file:<path>`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for unknown slugs and
    /// [`ServeError::BadRequest`] for malformed merge specs.
    pub fn parse(spec: &str) -> Result<Self, ServeError> {
        let spec = spec.trim();
        if let Some(path) = spec.strip_prefix("file:") {
            if path.is_empty() {
                return Err(ServeError::BadRequest {
                    detail: "file: spec needs a path".into(),
                });
            }
            return Ok(ModelSpec::File(PathBuf::from(path)));
        }
        if let Some(rest) = spec.strip_prefix("merge:") {
            let (pair, lambda_str) =
                rest.rsplit_once('@')
                    .ok_or_else(|| ServeError::BadRequest {
                        detail: format!("merge spec {spec:?} needs `@<lambda>`"),
                    })?;
            let (chip_slug, instruct_slug) =
                pair.split_once('+').ok_or_else(|| ServeError::BadRequest {
                    detail: format!("merge spec {spec:?} needs `<chip>+<instruct>`"),
                })?;
            let chip = zoo_model_from_slug(chip_slug).ok_or_else(|| ServeError::UnknownModel {
                spec: chip_slug.to_string(),
            })?;
            let instruct =
                zoo_model_from_slug(instruct_slug).ok_or_else(|| ServeError::UnknownModel {
                    spec: instruct_slug.to_string(),
                })?;
            let lambda: f32 = lambda_str.parse().map_err(|_| ServeError::BadRequest {
                detail: format!("bad lambda {lambda_str:?} in {spec:?}"),
            })?;
            if !lambda.is_finite() || !(0.0..=1.0).contains(&lambda) {
                return Err(ServeError::BadRequest {
                    detail: format!("lambda must lie in [0, 1], got {lambda}"),
                });
            }
            return Ok(ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            });
        }
        zoo_model_from_slug(spec)
            .map(ModelSpec::Zoo)
            .ok_or_else(|| ServeError::UnknownModel {
                spec: spec.to_string(),
            })
    }

    /// The canonical cache key (λ normalized to four decimals so `0.6` and
    /// `0.60` hit the same entry).
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            ModelSpec::Zoo(m) => m.slug(),
            ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            } => format!("merge:{}+{}@{:.4}", chip.slug(), instruct.slug(), lambda),
            ModelSpec::File(p) => format!("file:{}", p.display()),
        }
    }
}

/// The registry: zoo access plus a cache of materialized models.
pub struct ModelRegistry {
    zoo: Zoo,
    cache: Mutex<HashMap<String, Arc<TinyLm>>>,
    /// Serializes expensive materializations (training, merging) so two
    /// concurrent requests for the same λ build it once.
    build_lock: Mutex<()>,
    /// When set, merged checkpoints are persisted here (crash-safely) and
    /// reloaded instead of re-merged on later resolves.
    persist_dir: Option<PathBuf>,
    /// Attached by the server so integrity failures show up in
    /// `checksum_failures`; absent in library use.
    metrics: OnceLock<Arc<Metrics>>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ModelRegistry({:?}, {} cached)",
            self.zoo,
            self.loaded().len()
        )
    }
}

impl ModelRegistry {
    /// Creates a registry over a zoo.
    #[must_use]
    pub fn new(zoo: Zoo) -> Self {
        ModelRegistry {
            zoo,
            cache: Mutex::new(HashMap::new()),
            build_lock: Mutex::new(()),
            persist_dir: None,
            metrics: OnceLock::new(),
        }
    }

    /// Configures a directory where merged checkpoints are persisted
    /// (crash-safely, via write-to-temp-then-rename) and reloaded from on
    /// later resolves instead of re-merging. The directory is created if
    /// missing; a torn or corrupted persisted file is detected at load,
    /// removed, and rebuilt from its ingredients.
    #[must_use]
    pub fn with_persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let _ = std::fs::create_dir_all(&dir);
        self.persist_dir = Some(dir);
        self
    }

    /// Attaches a metrics core so integrity failures are counted in
    /// `checksum_failures`. Only the first attachment wins (the server
    /// calls this at bind).
    pub fn attach_metrics(&self, metrics: Arc<Metrics>) {
        let _ = self.metrics.set(metrics);
    }

    /// The backing zoo.
    #[must_use]
    pub fn zoo(&self) -> &Zoo {
        &self.zoo
    }

    /// Locks the model cache, recovering from poisoning: cache mutations
    /// are single `HashMap` operations that cannot be observed half-done,
    /// so the map is always consistent even if a panic interrupted a
    /// previous holder.
    fn cache_lock(&self) -> MutexGuard<'_, HashMap<String, Arc<TinyLm>>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a model under an arbitrary name (hot-swap path for
    /// programmatically built checkpoints), replacing any previous entry.
    pub fn register(&self, name: &str, model: TinyLm) -> Arc<TinyLm> {
        let arc = Arc::new(model);
        self.cache_lock().insert(name.to_string(), Arc::clone(&arc));
        arc
    }

    /// Resolves a spec string to a servable model, materializing it on
    /// first use. Returns the canonical key together with the model.
    ///
    /// # Errors
    ///
    /// Returns spec-parse errors, and forwards zoo-training, merge, and
    /// checkpoint-I/O failures.
    pub fn resolve_str(&self, spec: &str) -> Result<(String, Arc<TinyLm>), ServeError> {
        // Registered names take priority and need no parse.
        if let Some(m) = self.cache_lock().get(spec.trim()) {
            return Ok((spec.trim().to_string(), Arc::clone(m)));
        }
        let parsed = ModelSpec::parse(spec)?;
        let model = self.resolve(&parsed)?;
        Ok((parsed.key(), model))
    }

    /// Resolves a parsed spec, materializing it on first use.
    ///
    /// # Errors
    ///
    /// Forwards zoo-training, merge, and checkpoint-I/O failures.
    pub fn resolve(&self, spec: &ModelSpec) -> Result<Arc<TinyLm>, ServeError> {
        let key = spec.key();
        if let Some(m) = self.cache_lock().get(&key) {
            return Ok(Arc::clone(m));
        }
        // Build outside the cache lock (materialization can take seconds to
        // minutes) but under the build lock so concurrent misses for the
        // same key don't duplicate the work.
        let _build = self
            .build_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(m) = self.cache_lock().get(&key) {
            return Ok(Arc::clone(m));
        }
        let built = Arc::new(self.materialize(spec, &key)?);
        self.cache_lock().insert(key, Arc::clone(&built));
        Ok(built)
    }

    fn materialize(&self, spec: &ModelSpec, key: &str) -> Result<TinyLm, ServeError> {
        #[cfg(feature = "fault-inject")]
        {
            if crate::faults::should_fire(crate::faults::Site::RegistryResolve, key) {
                return Err(ServeError::Internal {
                    detail: format!("injected registry load failure for {key}"),
                });
            }
        }
        match spec {
            ModelSpec::Zoo(m) => Ok(self.zoo.model(*m)?),
            ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            } => {
                if let Some(model) = self.load_persisted(key)? {
                    return Ok(model);
                }
                let chip_ckpt = self.zoo.model(*chip)?.to_checkpoint()?;
                let instruct_ckpt = self.zoo.model(*instruct)?.to_checkpoint()?;
                #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
                let mut merged =
                    GeodesicMerge::new(*lambda)?.merge_pair(&chip_ckpt, &instruct_ckpt)?;
                #[cfg(feature = "fault-inject")]
                {
                    if crate::faults::should_fire(crate::faults::Site::MergePoison, key) {
                        if let Some(t) = merged.get_mut("model.norm.weight") {
                            t.data_mut()[0] = f32::NAN;
                        }
                    }
                }
                // Vet the merge before it can reach the cache or disk: a
                // poisoned checkpoint is reported, never served.
                merged.validate()?;
                if let Some(tensor) = merged.first_non_finite() {
                    self.note_integrity_failure();
                    return Err(ServeError::Model(ModelError::NonFinite {
                        tensor: tensor.to_string(),
                    }));
                }
                self.persist(key, &merged);
                Ok(TinyLm::from_checkpoint(&merged)?)
            }
            ModelSpec::File(path) => {
                let ckpt = format::load(path).map_err(|e| {
                    if is_integrity_error(&e) {
                        self.note_integrity_failure();
                    }
                    e
                })?;
                Ok(TinyLm::from_checkpoint(&ckpt)?)
            }
        }
    }

    /// The file a merged checkpoint with cache key `key` persists to, or
    /// `None` when no persist directory is configured. Keys are sanitized
    /// to a filesystem-safe alphabet.
    #[must_use]
    pub fn persist_path(&self, key: &str) -> Option<PathBuf> {
        let dir = self.persist_dir.as_ref()?;
        let safe: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        Some(dir.join(format!("{safe}.calt")))
    }

    /// Tries to reload a previously persisted merge. A damaged file
    /// (truncated, bit-flipped, non-finite) is counted, deleted, and
    /// reported as a miss so the caller rebuilds from ingredients; only
    /// genuine I/O errors propagate.
    fn load_persisted(&self, key: &str) -> Result<Option<TinyLm>, ServeError> {
        let Some(path) = self.persist_path(key) else {
            return Ok(None);
        };
        if !path.exists() {
            return Ok(None);
        }
        match format::load(&path) {
            Ok(ckpt) => Ok(Some(TinyLm::from_checkpoint(&ckpt)?)),
            Err(e) if is_integrity_error(&e) => {
                self.note_integrity_failure();
                let _ = std::fs::remove_file(&path);
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Best-effort persist of a vetted merge: failure only costs a rebuild
    /// on the next resolve, so errors are swallowed.
    fn persist(&self, key: &str, merged: &Checkpoint) {
        let Some(path) = self.persist_path(key) else {
            return;
        };
        #[cfg(feature = "fault-inject")]
        {
            if crate::faults::should_fire(crate::faults::Site::TornWrite, key) {
                // Simulate a crash mid-write through a non-atomic writer:
                // only the first half of the encoding reaches the final
                // path. `format::save` itself never does this — that is
                // the point of the injection.
                let bytes = format::encode(merged);
                let _ = std::fs::write(&path, &bytes[..bytes.len() / 2]);
                return;
            }
        }
        let _ = format::save(merged, &path);
    }

    fn note_integrity_failure(&self) {
        if let Some(m) = self.metrics.get() {
            m.on_checksum_failure();
        }
    }

    /// Evicts a materialized model; returns whether anything was removed.
    /// The next request for the spec rebuilds it (hot-swap after a zoo
    /// cache update).
    pub fn evict(&self, spec: &str) -> bool {
        let key = match ModelSpec::parse(spec) {
            Ok(parsed) => parsed.key(),
            Err(_) => spec.trim().to_string(),
        };
        let mut cache = self.cache_lock();
        cache.remove(&key).is_some() || cache.remove(spec.trim()).is_some()
    }

    /// Cache keys of every materialized model, sorted.
    #[must_use]
    pub fn loaded(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.cache_lock().keys().cloned().collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_pipeline::zoo::{Quality, ZooConfig};
    use chipalign_tensor::rng::Pcg32;

    fn registry() -> ModelRegistry {
        let zoo = Zoo::new(ZooConfig {
            quality: Quality::Smoke,
            seed: 7,
            cache_dir: None,
        })
        .expect("zoo");
        ModelRegistry::new(zoo)
    }

    fn random_model(seed: u64) -> TinyLm {
        let mut arch = ArchSpec::tiny("reg");
        arch.vocab_size = 99;
        TinyLm::new(&arch, &mut Pcg32::seed(seed)).expect("model")
    }

    #[test]
    fn spec_parsing_accepts_the_three_forms() {
        assert_eq!(
            ModelSpec::parse("instruct-qwen").expect("ok"),
            ModelSpec::Zoo(ZooModel::Instruct(Backbone::QwenTiny))
        );
        match ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.6").expect("ok") {
            ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            } => {
                assert_eq!(chip, ZooModel::Eda(Backbone::QwenTiny));
                assert_eq!(instruct, ZooModel::Instruct(Backbone::QwenTiny));
                assert!((lambda - 0.6).abs() < 1e-6);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            ModelSpec::parse("file:artifacts/zoo/x.calt").expect("ok"),
            ModelSpec::File(_)
        ));
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(matches!(
            ModelSpec::parse("no-such-model"),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:eda-qwen+instruct-qwen"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:eda-qwen+instruct-qwen@1.5"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:eda-qwen+instruct-qwen@nan"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:bogus+instruct-qwen@0.5"),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("file:"),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn merged_keys_normalize_lambda_formatting() {
        let a = ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.6").expect("ok");
        let b = ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.60").expect("ok");
        assert_eq!(a.key(), b.key());
        assert_eq!(a.key(), "merge:eda-qwen+instruct-qwen@0.6000");
    }

    #[test]
    fn registered_models_resolve_by_name_and_evict() {
        let reg = registry();
        reg.register("canary", random_model(3));
        let (key, m) = reg.resolve_str("canary").expect("ok");
        assert_eq!(key, "canary");
        assert_eq!(m.arch().name, "reg");
        assert_eq!(reg.loaded(), vec!["canary".to_string()]);
        assert!(reg.evict("canary"));
        assert!(!reg.evict("canary"));
        assert!(reg.loaded().is_empty());
    }

    #[test]
    fn persist_path_sanitizes_keys_and_requires_a_dir() {
        let reg = registry();
        assert!(reg.persist_path("merge:a+b@0.5").is_none(), "no dir set");
        let dir = std::env::temp_dir().join("chipalign-reg-persist");
        let reg = registry().with_persist_dir(&dir);
        let path = reg
            .persist_path("merge:eda-qwen+instruct-qwen@0.6000")
            .expect("dir set");
        let name = path
            .file_name()
            .expect("name")
            .to_string_lossy()
            .into_owned();
        assert_eq!(name, "merge-eda-qwen-instruct-qwen-0-6000.calt");
        assert!(path.starts_with(&dir));
    }

    #[test]
    fn corrupt_file_spec_is_rejected_and_counted() {
        let dir = std::env::temp_dir().join("chipalign-reg-corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("damaged.calt");
        let ckpt = random_model(5).to_checkpoint().expect("ckpt");
        let mut bytes = format::encode(&ckpt).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");

        let reg = registry();
        let metrics = Arc::new(Metrics::new());
        reg.attach_metrics(Arc::clone(&metrics));
        let spec = format!("file:{}", path.display());
        let err = reg.resolve_str(&spec);
        assert!(
            matches!(err, Err(ServeError::Model(ModelError::Corrupt { .. }))),
            "got {err:?}"
        );
        assert_eq!(metrics.snapshot().checksum_failures, 1);
        assert!(reg.loaded().is_empty(), "damaged model must not be cached");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_zoo_models_have_unique_slugs() {
        let models = all_zoo_models();
        assert_eq!(models.len(), 11);
        let mut slugs: Vec<String> = models.iter().map(|m| m.slug()).collect();
        slugs.sort();
        slugs.dedup();
        assert_eq!(slugs.len(), 11, "slugs must be unique");
        for m in models {
            assert_eq!(zoo_model_from_slug(&m.slug()), Some(m));
        }
    }
}

//! The model registry: every checkpoint the server can put behind a spec.
//!
//! Three kinds of spec resolve to a servable model:
//!
//! * **Zoo slugs** (`instruct-qwen`, `eda-qwen`, `chipnemo`, …) — trained
//!   on demand by [`chipalign_pipeline::zoo::Zoo`] and loaded from its
//!   on-disk cache (`artifacts/zoo`) when present.
//! * **Geodesic merges** (`merge:<chip>+<instruct>@<λ>`) — materialized on
//!   demand with [`chipalign_merge::GeodesicMerge`] from two zoo
//!   ingredients and cached per λ, so hot-swapping a served model to a new
//!   interpolation point is one `load` request, no restart.
//! * **Checkpoint files** (`file:<path>.calt`) — loaded with
//!   [`chipalign_model::format`].
//! * **Int8 variants** (`<spec>#int8`) — any of the above with the decode
//!   projections quantized to per-row-scaled int8 at load. The f32
//!   ingredient resolves through the same cache first (so it is shared
//!   with f32 traffic), then a quantized clone is cached under its own
//!   `…#int8` key. A quantized merge key still starts with `merge:` and
//!   therefore counts toward, and can be evicted by, the merge bound.
//! * **Int8 KV variants** (`<spec>#kv8`) — any of the above served with an
//!   int8-quantized paged KV pool ([`chipalign_nn::KvDtype::Int8`]).
//!   Unlike `#int8`, the suffix does not change the weights: the base spec
//!   resolves (and is cached) under its own key, and only the *returned*
//!   key carries `#kv8`, which [`ModelRegistry::kv_pool_for`] maps to a
//!   separate int8 pool for the same model allocation. Composes with
//!   `#int8` in either order; the canonical key is `…#int8#kv8`.
//! * **Speculative specs** (`spec:<target>|<draft>@<k>`) — target and
//!   draft are any two of the forms above (their vocabularies must
//!   match). Sessions decode the *target*, with the draft proposing `k`
//!   tokens per round for batched verification
//!   ([`chipalign_nn::SpecDecoder`]); greedy output stays byte-identical
//!   to serving the target alone. Resolving warms both models
//!   ([`ModelRegistry::resolve_spec_str`]); KV pool and dtype selection
//!   follow the target segment, so `spec:m#kv8|d@4` verifies against an
//!   int8 KV pool exactly like plain `m#kv8` traffic.
//!
//! All materialized models live behind `Arc`s in one cache keyed by a
//! canonical spec string; [`ModelRegistry::register`] inserts programmatic
//! models (tests, canaries) under arbitrary names.
//!
//! # Concurrency and bounds
//!
//! Materialization is deduplicated *per key*: concurrent resolves of the
//! same spec elect one builder while the rest wait on a latch and adopt
//! the builder's result, and resolves of *different* specs build in
//! parallel (the old registry serialized every build behind one global
//! lock). If a builder fails, a waiter takes over and retries rather than
//! echoing the stale error. The cache itself is bounded for merge keys:
//! beyond [`ModelRegistry::with_merge_capacity`] (default 32) the
//! least-recently-used `merge:` entry is evicted and counted in the
//! `merge_evictions` metric — a λ-sweep can no longer grow the cache
//! without limit. Zoo slugs and registered names are never evicted.
//!
//! # Integrity
//!
//! The registry never serves a checkpoint it hasn't vetted: merged models
//! are validated ([`Checkpoint::validate`]) and scanned for non-finite
//! weights before they are cached, and a poisoned merge is reported as a
//! structured error rather than entering the cache. With a persist
//! directory configured ([`ModelRegistry::with_persist_dir`]), merges are
//! saved crash-safely and a torn or corrupted persisted file is detected
//! at load, counted in `checksum_failures`, removed, and rebuilt from its
//! ingredients.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, Weak};

use chipalign_merge::{GeodesicMerge, Merger};
use chipalign_model::{format, Checkpoint, ModelError};
use chipalign_nn::{KvDtype, KvPool, KvPoolConfig, TinyLm, SPEC_K_MAX};
use chipalign_pipeline::zoo::{Backbone, Zoo, ZooModel};

use crate::metrics::Metrics;
use crate::ServeError;

/// Whether a load failure means the bytes on disk are damaged (as opposed
/// to e.g. a plain I/O error), so the file is worth deleting and
/// rebuilding.
fn is_integrity_error(e: &ModelError) -> bool {
    matches!(
        e,
        ModelError::Corrupt { .. }
            | ModelError::ChecksumMismatch { .. }
            | ModelError::NonFinite { .. }
    )
}

/// Every zoo model the registry can name.
#[must_use]
pub fn all_zoo_models() -> Vec<ZooModel> {
    let mut models = Vec::new();
    for b in [
        Backbone::QwenTiny,
        Backbone::LlamaTiny,
        Backbone::LlamaLarge,
    ] {
        models.push(ZooModel::Base(b));
        models.push(ZooModel::Instruct(b));
    }
    models.push(ZooModel::Eda(Backbone::QwenTiny));
    models.push(ZooModel::Eda(Backbone::LlamaTiny));
    models.push(ZooModel::ChipNemo);
    models.push(ZooModel::GeneralStrong);
    models.push(ZooModel::RagEda);
    models
}

fn zoo_model_from_slug(slug: &str) -> Option<ZooModel> {
    all_zoo_models().into_iter().find(|m| m.slug() == slug)
}

/// Strips an int8-KV request from a spec string: returns the base spec
/// with the `#kv8` marker removed when present (`None` when the spec does
/// not request int8 KV). `#kv8` composes with `#int8` in either order —
/// the base is normalized to trailing `#int8` so both orders share one
/// cache entry — but stacking `#kv8` twice or burying it mid-spec is
/// rejected.
fn strip_kv8(spec: &str) -> Result<Option<String>, ServeError> {
    match spec.matches("#kv8").count() {
        0 => return Ok(None),
        1 => {}
        _ => {
            return Err(ServeError::BadRequest {
                detail: format!("spec {spec:?} stacks #kv8 more than once"),
            })
        }
    }
    if let Some(base) = spec.strip_suffix("#kv8") {
        return Ok(Some(base.to_string()));
    }
    if let Some(tail) = spec.strip_suffix("#int8") {
        if let Some(base) = tail.strip_suffix("#kv8") {
            return Ok(Some(format!("{base}#int8")));
        }
    }
    Err(ServeError::BadRequest {
        detail: format!("#kv8 must suffix the spec, got {spec:?}"),
    })
}

/// A parsed model specification.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A zoo model by slug.
    Zoo(ZooModel),
    /// A ChipAlign geodesic merge of two zoo models at `lambda`.
    Merged {
        /// The domain-adapted ingredient (first merge argument).
        chip: ZooModel,
        /// The instruction-aligned ingredient.
        instruct: ZooModel,
        /// The interpolation point in `[0, 1]`.
        lambda: f32,
    },
    /// A checkpoint file in the crate's `.calt` format.
    File(PathBuf),
    /// An int8-quantized variant of another spec (`<spec>#int8`).
    Quantized(Box<ModelSpec>),
}

impl ModelSpec {
    /// Parses a spec string.
    ///
    /// Grammar: `<zoo-slug>` | `merge:<chip-slug>+<instruct-slug>@<λ>` |
    /// `file:<path>`, each optionally suffixed `#int8` for the quantized
    /// variant.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for unknown slugs and
    /// [`ServeError::BadRequest`] for malformed merge specs or a stacked
    /// `#int8#int8` suffix.
    pub fn parse(spec: &str) -> Result<Self, ServeError> {
        let spec = spec.trim();
        if let Some(inner) = spec.strip_suffix("#int8") {
            if inner.ends_with("#int8") {
                return Err(ServeError::BadRequest {
                    detail: format!("spec {spec:?} stacks #int8 more than once"),
                });
            }
            return Ok(ModelSpec::Quantized(Box::new(ModelSpec::parse(inner)?)));
        }
        if let Some(path) = spec.strip_prefix("file:") {
            if path.is_empty() {
                return Err(ServeError::BadRequest {
                    detail: "file: spec needs a path".into(),
                });
            }
            return Ok(ModelSpec::File(PathBuf::from(path)));
        }
        if let Some(rest) = spec.strip_prefix("merge:") {
            let (pair, lambda_str) =
                rest.rsplit_once('@')
                    .ok_or_else(|| ServeError::BadRequest {
                        detail: format!("merge spec {spec:?} needs `@<lambda>`"),
                    })?;
            let (chip_slug, instruct_slug) =
                pair.split_once('+').ok_or_else(|| ServeError::BadRequest {
                    detail: format!("merge spec {spec:?} needs `<chip>+<instruct>`"),
                })?;
            let chip = zoo_model_from_slug(chip_slug).ok_or_else(|| ServeError::UnknownModel {
                spec: chip_slug.to_string(),
            })?;
            let instruct =
                zoo_model_from_slug(instruct_slug).ok_or_else(|| ServeError::UnknownModel {
                    spec: instruct_slug.to_string(),
                })?;
            let lambda: f32 = lambda_str.parse().map_err(|_| ServeError::BadRequest {
                detail: format!("bad lambda {lambda_str:?} in {spec:?}"),
            })?;
            if !lambda.is_finite() || !(0.0..=1.0).contains(&lambda) {
                return Err(ServeError::BadRequest {
                    detail: format!("lambda must lie in [0, 1], got {lambda}"),
                });
            }
            return Ok(ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            });
        }
        zoo_model_from_slug(spec)
            .map(ModelSpec::Zoo)
            .ok_or_else(|| ServeError::UnknownModel {
                spec: spec.to_string(),
            })
    }

    /// The canonical cache key (λ normalized to four decimals so `0.6` and
    /// `0.60` hit the same entry).
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            ModelSpec::Zoo(m) => m.slug(),
            ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            } => format!("merge:{}+{}@{:.4}", chip.slug(), instruct.slug(), lambda),
            ModelSpec::File(p) => format!("file:{}", p.display()),
            ModelSpec::Quantized(inner) => format!("{}#int8", inner.key()),
        }
    }
}

/// A resolved `spec:<target>|<draft>@<k>` speculative-decoding spec: both
/// models materialized, plus the canonical keys the server needs to route
/// pools and sessions.
#[derive(Debug, Clone)]
pub struct SpecResolution {
    /// The canonical spec key, `spec:<target-key>|<draft-key>@<k>`.
    pub key: String,
    /// The canonical key of the target alone — KV pool and dtype selection
    /// follow this, so speculative and plain traffic against one target
    /// share pools.
    pub target_key: String,
    /// The verified model; the session's output bytes are its bytes.
    pub target: Arc<TinyLm>,
    /// The cheap proposer. Never affects output bytes, only throughput.
    pub draft: Arc<TinyLm>,
    /// Tokens drafted per speculation round, in `[1, SPEC_K_MAX]`.
    pub k: usize,
}

/// One cached model plus its LRU stamp (bumped on every hit; only merge
/// keys are ever evicted by stamp).
struct CacheEntry {
    model: Arc<TinyLm>,
    stamp: u64,
}

/// The materialized-model cache: entries plus the monotonic LRU clock.
#[derive(Default)]
struct ModelCache {
    entries: HashMap<String, CacheEntry>,
    clock: u64,
}

impl ModelCache {
    fn get(&mut self, key: &str) -> Option<Arc<TinyLm>> {
        self.clock += 1;
        let stamp = self.clock;
        let entry = self.entries.get_mut(key)?;
        entry.stamp = stamp;
        Some(Arc::clone(&entry.model))
    }

    fn insert(&mut self, key: String, model: Arc<TinyLm>) {
        self.clock += 1;
        let stamp = self.clock;
        self.entries.insert(key, CacheEntry { model, stamp });
    }

    fn merge_count(&self) -> usize {
        self.entries
            .keys()
            .filter(|k| k.starts_with("merge:"))
            .count()
    }

    /// Removes the least-recently-used `merge:` entry; returns whether one
    /// existed. Non-merge entries (zoo slugs, registered names) are never
    /// victims.
    fn evict_lru_merge(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .filter(|(k, _)| k.starts_with("merge:"))
            .min_by_key(|(_, e)| e.stamp)
            .map(|(k, _)| k.clone());
        match victim {
            Some(key) => {
                self.entries.remove(&key);
                true
            }
            None => false,
        }
    }
}

/// The registry: zoo access plus a cache of materialized models.
pub struct ModelRegistry {
    zoo: Zoo,
    cache: Mutex<ModelCache>,
    /// Keys with a materialization in flight. Concurrent resolves of the
    /// same key elect one builder here; the rest wait on `build_ready`.
    /// Different keys build in parallel.
    building: Mutex<HashSet<String>>,
    /// Notified whenever any build finishes (success or failure) so
    /// waiters re-check the cache — or claim the build themselves if the
    /// previous builder failed.
    build_ready: Condvar,
    /// Most `merge:` entries kept in the cache before LRU eviction.
    merge_capacity: usize,
    /// When set, merged checkpoints are persisted here (crash-safely) and
    /// reloaded instead of re-merged on later resolves.
    persist_dir: Option<PathBuf>,
    /// Attached by the server so integrity failures show up in
    /// `checksum_failures`; absent in library use.
    metrics: OnceLock<Arc<Metrics>>,
    /// One paged KV pool per (model *allocation*, KV dtype), created
    /// lazily by [`ModelRegistry::kv_pool`] /
    /// [`ModelRegistry::kv_pool_for`] — f32 and `#kv8` traffic against the
    /// same weights draw from separate pools. Keys are weak so an evicted
    /// model's pools die with their last session; dead slots are pruned on
    /// access.
    kv_pools: Mutex<Vec<(Weak<TinyLm>, KvDtype, Arc<KvPool>)>>,
    /// Shape of pools created by [`ModelRegistry::kv_pool`].
    kv_pool_cfg: KvPoolConfig,
}

/// RAII claim on one key's build slot: dropped (panic-safe) when the build
/// ends either way, waking every waiter to re-check the cache.
struct BuildGuard<'a> {
    registry: &'a ModelRegistry,
    key: &'a str,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        let mut building = self
            .registry
            .building
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        building.remove(self.key);
        self.registry.build_ready.notify_all();
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ModelRegistry({:?}, {} cached)",
            self.zoo,
            self.loaded().len()
        )
    }
}

impl ModelRegistry {
    /// Creates a registry over a zoo.
    #[must_use]
    pub fn new(zoo: Zoo) -> Self {
        ModelRegistry {
            zoo,
            cache: Mutex::new(ModelCache::default()),
            building: Mutex::new(HashSet::new()),
            build_ready: Condvar::new(),
            merge_capacity: 32,
            persist_dir: None,
            metrics: OnceLock::new(),
            kv_pools: Mutex::new(Vec::new()),
            kv_pool_cfg: KvPoolConfig::default(),
        }
    }

    /// Bounds the number of cached `merge:` models (default 32). Beyond
    /// it the least-recently-used merge is evicted (and counted in
    /// `merge_evictions`); the next resolve of an evicted λ rebuilds it —
    /// or reloads it from the persist directory when one is configured.
    /// Clamped to at least 1. Zoo slugs and registered names are exempt.
    #[must_use]
    pub fn with_merge_capacity(mut self, capacity: usize) -> Self {
        self.merge_capacity = capacity.max(1);
        self
    }

    /// Configures a directory where merged checkpoints are persisted
    /// (crash-safely, via write-to-temp-then-rename) and reloaded from on
    /// later resolves instead of re-merging. The directory is created if
    /// missing; a torn or corrupted persisted file is detected at load,
    /// removed, and rebuilt from its ingredients.
    #[must_use]
    pub fn with_persist_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let _ = std::fs::create_dir_all(&dir);
        self.persist_dir = Some(dir);
        self
    }

    /// Configures the shape of paged KV pools handed out by
    /// [`ModelRegistry::kv_pool`] (block size and per-model block
    /// capacity). Zero fields are clamped to 1. Pools already created keep
    /// their old shape, so call this before serving traffic.
    #[must_use]
    pub fn with_kv_pool_config(mut self, cfg: KvPoolConfig) -> Self {
        self.kv_pool_cfg = KvPoolConfig {
            block_tokens: cfg.block_tokens.max(1),
            max_blocks: cfg.max_blocks.max(1),
            dtype: cfg.dtype,
        };
        self
    }

    /// The paged KV pool backing sessions of this model allocation at the
    /// configured default KV dtype, created on first use. Pool identity
    /// follows the `Arc` allocation: re-materializing an evicted spec
    /// yields a fresh pool, and the old one drains away with its last
    /// session. Newly created pools are registered with the attached
    /// metrics core so their block gauges flow into snapshots.
    #[must_use]
    pub fn kv_pool(&self, model: &Arc<TinyLm>) -> Arc<KvPool> {
        self.pool_with_dtype(model, self.kv_pool_cfg.dtype)
    }

    /// The KV dtype sessions resolved under `key` should use: canonical
    /// `…#kv8` keys get int8 KV, everything else the configured default.
    /// For `spec:` keys the *target* segment decides — the draft keeps its
    /// own private contiguous cache and never touches a pool.
    #[must_use]
    pub fn kv_dtype_for(&self, key: &str) -> KvDtype {
        if Self::spec_target_segment(key).ends_with("#kv8") {
            KvDtype::Int8
        } else {
            self.kv_pool_cfg.dtype
        }
    }

    /// The target segment of a canonical `spec:` key (the whole key when
    /// it is not speculative). KV pool and dtype routing follow it.
    fn spec_target_segment(key: &str) -> &str {
        key.strip_prefix("spec:")
            .and_then(|rest| rest.split_once('|'))
            .map_or(key, |(target, _)| target)
    }

    /// Like [`ModelRegistry::kv_pool`], but honours a `#kv8` suffix on the
    /// canonical key returned by [`ModelRegistry::resolve_str`] — the
    /// server's session-pool lookup.
    #[must_use]
    pub fn kv_pool_for(&self, key: &str, model: &Arc<TinyLm>) -> Arc<KvPool> {
        self.pool_with_dtype(model, self.kv_dtype_for(key))
    }

    fn pool_with_dtype(&self, model: &Arc<TinyLm>, dtype: KvDtype) -> Arc<KvPool> {
        let mut pools = self.kv_pools.lock().unwrap_or_else(PoisonError::into_inner);
        pools.retain(|(w, _, _)| w.strong_count() > 0);
        if let Some((_, _, pool)) = pools
            .iter()
            .find(|(w, d, _)| *d == dtype && std::ptr::eq(w.as_ptr(), Arc::as_ptr(model)))
        {
            return Arc::clone(pool);
        }
        let cfg = KvPoolConfig {
            dtype,
            ..self.kv_pool_cfg.clone()
        };
        let pool = KvPool::new(cfg).expect("clamped pool config is valid");
        if let Some(m) = self.metrics.get() {
            m.register_kv_pool(&pool);
        }
        pools.push((Arc::downgrade(model), dtype, Arc::clone(&pool)));
        pool
    }

    /// Attaches a metrics core so integrity failures are counted in
    /// `checksum_failures`. Only the first attachment wins (the server
    /// calls this at bind). Seeds the `weights_bytes` gauge from whatever
    /// is already cached.
    pub fn attach_metrics(&self, metrics: Arc<Metrics>) {
        let _ = self.metrics.set(metrics);
        let cache = self.cache_lock();
        self.refresh_weights_gauge(&cache);
    }

    /// The backing zoo.
    #[must_use]
    pub fn zoo(&self) -> &Zoo {
        &self.zoo
    }

    /// Locks the model cache, recovering from poisoning: cache mutations
    /// are single map operations that cannot be observed half-done, so the
    /// map is always consistent even if a panic interrupted a previous
    /// holder.
    fn cache_lock(&self) -> MutexGuard<'_, ModelCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Inserts into the cache and restores the merge-capacity bound,
    /// counting any evictions.
    fn cache_insert(&self, key: String, model: Arc<TinyLm>) {
        let mut cache = self.cache_lock();
        cache.insert(key, model);
        while cache.merge_count() > self.merge_capacity {
            if !cache.evict_lru_merge() {
                break;
            }
            if let Some(m) = self.metrics.get() {
                m.on_merge_eviction();
            }
        }
        self.refresh_weights_gauge(&cache);
    }

    /// Recomputes the `weights_bytes` gauge as the sum over every cached
    /// model at its decode dtype. Recompute-from-scratch (rather than
    /// add/subtract bookkeeping) keeps the gauge right regardless of when
    /// metrics were attached or which path inserted or evicted.
    fn refresh_weights_gauge(&self, cache: &ModelCache) {
        if let Some(m) = self.metrics.get() {
            let total: u64 = cache
                .entries
                .values()
                .map(|e| e.model.weights_bytes())
                .sum();
            m.set_weights_bytes(total);
        }
    }

    /// Registers a model under an arbitrary name (hot-swap path for
    /// programmatically built checkpoints), replacing any previous entry.
    pub fn register(&self, name: &str, model: TinyLm) -> Arc<TinyLm> {
        let arc = Arc::new(model);
        self.cache_insert(name.to_string(), Arc::clone(&arc));
        arc
    }

    /// Resolves a spec string to a servable model, materializing it on
    /// first use. Returns the canonical key together with the model.
    ///
    /// # Errors
    ///
    /// Returns spec-parse errors, and forwards zoo-training, merge, and
    /// checkpoint-I/O failures.
    pub fn resolve_str(&self, spec: &str) -> Result<(String, Arc<TinyLm>), ServeError> {
        // Registered names take priority and need no parse.
        let trimmed = spec.trim();
        if let Some(m) = self.cache_lock().get(trimmed) {
            return Ok((trimmed.to_string(), m));
        }
        // `spec:` keys resolve to their *target* model (the draft is warmed
        // too, so a `load` request readies both); sessions that want the
        // draft pairing go through `resolve_spec_str` instead.
        if trimmed.starts_with("spec:") {
            let res = self
                .resolve_spec_str(trimmed)?
                .expect("spec: prefix was just checked");
            return Ok((res.key, res.target));
        }
        // `#kv8` selects the int8 KV pool, not different weights: resolve
        // (and cache) the base spec under its own key, and only the
        // returned key carries the suffix — no `…#kv8` cache entry, so the
        // weights gauge never double-counts the shared allocation.
        if let Some(base) = strip_kv8(trimmed)? {
            let (key, model) = self.resolve_str(&base)?;
            return Ok((format!("{key}#kv8"), model));
        }
        let parsed = match ModelSpec::parse(trimmed) {
            Ok(parsed) => parsed,
            Err(err) => {
                // `<registered-name>#int8`: a quantized variant of a model
                // that was registered programmatically, so the inner name
                // has no spec grammar. Two concurrent callers may both
                // quantize; the second insert wins — same bytes either way.
                if let Some(inner) = trimmed.strip_suffix("#int8") {
                    if let Some(base) = self.cache_lock().get(inner) {
                        let mut model = (*base).clone();
                        model.quantize();
                        let arc = Arc::new(model);
                        self.cache_insert(trimmed.to_string(), Arc::clone(&arc));
                        return Ok((trimmed.to_string(), arc));
                    }
                }
                return Err(err);
            }
        };
        let model = self.resolve(&parsed)?;
        Ok((parsed.key(), model))
    }

    /// Resolves a speculative-decoding spec, `spec:<target>|<draft>@<k>`.
    ///
    /// Returns `Ok(None)` when `spec` has no `spec:` prefix — callers that
    /// accept both plain and speculative specs try this first and fall
    /// through to [`ModelRegistry::resolve_str`]. Target and draft are any
    /// two non-speculative specs (zoo slugs, merges, files, registered
    /// names, `#int8`/`#kv8` variants); `@<k>` binds to the *last* `@`, so
    /// merge λs inside the target parse unambiguously. Both models
    /// materialize through the shared cache.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for a malformed pairing, a draft
    /// length outside `[1, SPEC_K_MAX]`, or a draft whose vocabulary
    /// differs from the target's (its proposals could never be verified),
    /// and forwards resolution failures of either ingredient.
    pub fn resolve_spec_str(&self, spec: &str) -> Result<Option<SpecResolution>, ServeError> {
        let trimmed = spec.trim();
        let Some(rest) = trimmed.strip_prefix("spec:") else {
            return Ok(None);
        };
        let (pair, k_str) = rest
            .rsplit_once('@')
            .ok_or_else(|| ServeError::BadRequest {
                detail: format!("speculative spec {trimmed:?} needs `@<k>`"),
            })?;
        let (target_spec, draft_spec) =
            pair.split_once('|').ok_or_else(|| ServeError::BadRequest {
                detail: format!("speculative spec {trimmed:?} needs `<target>|<draft>`"),
            })?;
        if target_spec.starts_with("spec:") || draft_spec.starts_with("spec:") {
            return Err(ServeError::BadRequest {
                detail: format!("speculative specs do not nest, got {trimmed:?}"),
            });
        }
        let k: usize = k_str.parse().map_err(|_| ServeError::BadRequest {
            detail: format!("bad draft length {k_str:?} in {trimmed:?}"),
        })?;
        if !(1..=SPEC_K_MAX).contains(&k) {
            return Err(ServeError::BadRequest {
                detail: format!("draft length must lie in [1, {SPEC_K_MAX}], got {k}"),
            });
        }
        let (target_key, target) = self.resolve_str(target_spec)?;
        let (draft_key, draft) = self.resolve_str(draft_spec)?;
        if draft.arch().vocab_size != target.arch().vocab_size {
            return Err(ServeError::BadRequest {
                detail: format!(
                    "draft vocab ({}) must match target vocab ({})",
                    draft.arch().vocab_size,
                    target.arch().vocab_size
                ),
            });
        }
        Ok(Some(SpecResolution {
            key: format!("spec:{target_key}|{draft_key}@{k}"),
            target_key,
            target,
            draft,
            k,
        }))
    }

    /// Resolves a parsed spec, materializing it on first use.
    ///
    /// Concurrent resolves of the same key build it exactly once: one
    /// caller is elected builder, the rest block until the build ends and
    /// adopt the cached result (or, if the builder failed, take over the
    /// build themselves). Resolves of different keys never serialize
    /// against each other.
    ///
    /// # Errors
    ///
    /// Forwards zoo-training, merge, and checkpoint-I/O failures.
    pub fn resolve(&self, spec: &ModelSpec) -> Result<Arc<TinyLm>, ServeError> {
        let key = spec.key();
        loop {
            if let Some(m) = self.cache_lock().get(&key) {
                return Ok(m);
            }
            let mut building = self.building.lock().unwrap_or_else(PoisonError::into_inner);
            if building.insert(key.clone()) {
                break; // we are the builder for this key
            }
            // Someone else is building this key: wait for their build to
            // end, then re-check. On their success the cache check above
            // hits; on their failure the claim above succeeds and this
            // caller retries the build instead of echoing a stale error.
            drop(
                self.build_ready
                    .wait(building)
                    .unwrap_or_else(PoisonError::into_inner),
            );
        }
        // Panic-safe release of the build claim (wakes all waiters).
        let _guard = BuildGuard {
            registry: self,
            key: &key,
        };
        // The elected builder double-checks: the previous builder may have
        // finished between our cache miss and our claim.
        if let Some(m) = self.cache_lock().get(&key) {
            return Ok(m);
        }
        // Materialization (training, merging, disk I/O) runs without any
        // lock held — only the per-key claim above guards it.
        let built = Arc::new(self.materialize(spec, &key)?);
        self.cache_insert(key.clone(), Arc::clone(&built));
        Ok(built)
    }

    fn materialize(&self, spec: &ModelSpec, key: &str) -> Result<TinyLm, ServeError> {
        #[cfg(feature = "fault-inject")]
        {
            if crate::faults::should_fire(crate::faults::Site::RegistryResolve, key) {
                return Err(ServeError::Internal {
                    detail: format!("injected registry load failure for {key}"),
                });
            }
        }
        match spec {
            ModelSpec::Zoo(m) => Ok(self.zoo.model(*m)?),
            ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            } => {
                if let Some(model) = self.load_persisted(key)? {
                    return Ok(model);
                }
                let chip_ckpt = self.zoo.model(*chip)?.to_checkpoint()?;
                let instruct_ckpt = self.zoo.model(*instruct)?.to_checkpoint()?;
                #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
                let mut merged =
                    GeodesicMerge::new(*lambda)?.merge_pair(&chip_ckpt, &instruct_ckpt)?;
                #[cfg(feature = "fault-inject")]
                {
                    if crate::faults::should_fire(crate::faults::Site::MergePoison, key) {
                        if let Some(t) = merged.get_mut("model.norm.weight") {
                            t.data_mut()[0] = f32::NAN;
                        }
                    }
                }
                // Vet the merge before it can reach the cache or disk: a
                // poisoned checkpoint is reported, never served.
                merged.validate()?;
                if let Some(tensor) = merged.first_non_finite() {
                    self.note_integrity_failure();
                    return Err(ServeError::Model(ModelError::NonFinite {
                        tensor: tensor.to_string(),
                    }));
                }
                self.persist(key, &merged);
                Ok(TinyLm::from_checkpoint(&merged)?)
            }
            ModelSpec::File(path) => {
                let ckpt = format::load(path).map_err(|e| {
                    if is_integrity_error(&e) {
                        self.note_integrity_failure();
                    }
                    e
                })?;
                Ok(TinyLm::from_checkpoint(&ckpt)?)
            }
            ModelSpec::Quantized(inner) => {
                // The f32 ingredient resolves through the cache under its
                // own (different) key, so recursing cannot deadlock the
                // per-key build claim — and f32 traffic shares the base.
                let base = self.resolve(inner)?;
                let mut model = (*base).clone();
                model.quantize();
                Ok(model)
            }
        }
    }

    /// The file a merged checkpoint with cache key `key` persists to, or
    /// `None` when no persist directory is configured. Keys are sanitized
    /// to a filesystem-safe alphabet.
    #[must_use]
    pub fn persist_path(&self, key: &str) -> Option<PathBuf> {
        let dir = self.persist_dir.as_ref()?;
        let safe: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        Some(dir.join(format!("{safe}.calt")))
    }

    /// Tries to reload a previously persisted merge. A damaged file
    /// (truncated, bit-flipped, non-finite) is counted, deleted, and
    /// reported as a miss so the caller rebuilds from ingredients; only
    /// genuine I/O errors propagate.
    fn load_persisted(&self, key: &str) -> Result<Option<TinyLm>, ServeError> {
        let Some(path) = self.persist_path(key) else {
            return Ok(None);
        };
        if !path.exists() {
            return Ok(None);
        }
        match format::load(&path) {
            Ok(ckpt) => Ok(Some(TinyLm::from_checkpoint(&ckpt)?)),
            Err(e) if is_integrity_error(&e) => {
                self.note_integrity_failure();
                let _ = std::fs::remove_file(&path);
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Best-effort persist of a vetted merge: failure only costs a rebuild
    /// on the next resolve, so errors are swallowed.
    fn persist(&self, key: &str, merged: &Checkpoint) {
        let Some(path) = self.persist_path(key) else {
            return;
        };
        #[cfg(feature = "fault-inject")]
        {
            if crate::faults::should_fire(crate::faults::Site::TornWrite, key) {
                // Simulate a crash mid-write through a non-atomic writer:
                // only the first half of the encoding reaches the final
                // path. `format::save` itself never does this — that is
                // the point of the injection.
                let bytes = format::encode(merged);
                let _ = std::fs::write(&path, &bytes[..bytes.len() / 2]);
                return;
            }
        }
        let _ = format::save(merged, &path);
    }

    fn note_integrity_failure(&self) {
        if let Some(m) = self.metrics.get() {
            m.on_checksum_failure();
        }
    }

    /// Evicts a materialized model; returns whether anything was removed.
    /// The next request for the spec rebuilds it (hot-swap after a zoo
    /// cache update).
    pub fn evict(&self, spec: &str) -> bool {
        let key = match ModelSpec::parse(spec) {
            Ok(parsed) => parsed.key(),
            Err(_) => spec.trim().to_string(),
        };
        let mut cache = self.cache_lock();
        let removed =
            cache.entries.remove(&key).is_some() || cache.entries.remove(spec.trim()).is_some();
        if removed {
            self.refresh_weights_gauge(&cache);
        }
        removed
    }

    /// Cache keys of every materialized model, sorted.
    #[must_use]
    pub fn loaded(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.cache_lock().entries.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// `(key, decode dtype, weight bytes)` for every materialized model,
    /// sorted by key — the admin `models` surface.
    #[must_use]
    pub fn loaded_details(&self) -> Vec<(String, &'static str, u64)> {
        let cache = self.cache_lock();
        let mut rows: Vec<(String, &'static str, u64)> = cache
            .entries
            .iter()
            .map(|(k, e)| (k.clone(), e.model.dtype(), e.model.weights_bytes()))
            .collect();
        drop(cache);
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_pipeline::zoo::{Quality, ZooConfig};
    use chipalign_tensor::rng::Pcg32;

    fn registry() -> ModelRegistry {
        let zoo = Zoo::new(ZooConfig {
            quality: Quality::Smoke,
            seed: 7,
            cache_dir: None,
        })
        .expect("zoo");
        ModelRegistry::new(zoo)
    }

    fn random_model(seed: u64) -> TinyLm {
        let mut arch = ArchSpec::tiny("reg");
        arch.vocab_size = 99;
        TinyLm::new(&arch, &mut Pcg32::seed(seed)).expect("model")
    }

    #[test]
    fn spec_parsing_accepts_the_three_forms() {
        assert_eq!(
            ModelSpec::parse("instruct-qwen").expect("ok"),
            ModelSpec::Zoo(ZooModel::Instruct(Backbone::QwenTiny))
        );
        match ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.6").expect("ok") {
            ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            } => {
                assert_eq!(chip, ZooModel::Eda(Backbone::QwenTiny));
                assert_eq!(instruct, ZooModel::Instruct(Backbone::QwenTiny));
                assert!((lambda - 0.6).abs() < 1e-6);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            ModelSpec::parse("file:artifacts/zoo/x.calt").expect("ok"),
            ModelSpec::File(_)
        ));
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(matches!(
            ModelSpec::parse("no-such-model"),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:eda-qwen+instruct-qwen"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:eda-qwen+instruct-qwen@1.5"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:eda-qwen+instruct-qwen@nan"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:bogus+instruct-qwen@0.5"),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("file:"),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn spec_parsing_accepts_int8_suffix_on_every_form() {
        assert_eq!(
            ModelSpec::parse("instruct-qwen#int8").expect("ok"),
            ModelSpec::Quantized(Box::new(ModelSpec::Zoo(ZooModel::Instruct(
                Backbone::QwenTiny
            ))))
        );
        let merged = ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.60#int8").expect("ok");
        assert_eq!(merged.key(), "merge:eda-qwen+instruct-qwen@0.6000#int8");
        assert!(
            merged.key().starts_with("merge:"),
            "quantized merges stay under the merge eviction bound"
        );
        assert_eq!(
            ModelSpec::parse("file:x.calt#int8").expect("ok").key(),
            "file:x.calt#int8"
        );
    }

    #[test]
    fn spec_parsing_rejects_stacked_int8() {
        assert!(matches!(
            ModelSpec::parse("instruct-qwen#int8#int8"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("no-such-model#int8"),
            Err(ServeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn registered_name_int8_resolves_to_quantized_clone() {
        let reg = registry();
        reg.register("canary", random_model(9));
        let (key, q) = reg.resolve_str("canary#int8").expect("quantized variant");
        assert_eq!(key, "canary#int8");
        assert_eq!(q.dtype(), "int8");
        let (_, base) = reg.resolve_str("canary").expect("base");
        assert_eq!(
            base.dtype(),
            "f32",
            "quantizing a clone leaves the base f32"
        );
        assert!(q.weights_bytes() < base.weights_bytes());
        assert_eq!(
            reg.loaded(),
            vec!["canary".to_string(), "canary#int8".to_string()]
        );
        // Second resolve hits the cache: same allocation.
        let (_, again) = reg.resolve_str("canary#int8").expect("cached");
        assert!(Arc::ptr_eq(&q, &again));
    }

    #[test]
    fn quantized_zoo_spec_caches_the_f32_base_too() {
        let reg = registry();
        let (key, q) = reg.resolve_str("instruct-qwen#int8").expect("resolve");
        assert_eq!(key, "instruct-qwen#int8");
        assert_eq!(q.dtype(), "int8");
        let loaded = reg.loaded();
        assert!(
            loaded.contains(&"instruct-qwen".to_string()),
            "f32 ingredient resolves through the cache and stays shared"
        );
        assert!(loaded.contains(&"instruct-qwen#int8".to_string()));
    }

    #[test]
    fn weights_gauge_tracks_cache_contents() {
        let reg = registry();
        let metrics = Arc::new(Metrics::new());
        reg.attach_metrics(Arc::clone(&metrics));
        let base = reg.register("canary", random_model(11));
        assert_eq!(metrics.snapshot().weights_bytes, base.weights_bytes());
        let (_, q) = reg.resolve_str("canary#int8").expect("quantize");
        assert_eq!(
            metrics.snapshot().weights_bytes,
            base.weights_bytes() + q.weights_bytes()
        );
        assert!(reg.evict("canary#int8"));
        assert_eq!(metrics.snapshot().weights_bytes, base.weights_bytes());
        let details = reg.loaded_details();
        assert_eq!(details.len(), 1);
        assert_eq!(details[0].0, "canary");
        assert_eq!(details[0].1, "f32");
        assert_eq!(details[0].2, base.weights_bytes());
    }

    #[test]
    fn merged_keys_normalize_lambda_formatting() {
        let a = ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.6").expect("ok");
        let b = ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.60").expect("ok");
        assert_eq!(a.key(), b.key());
        assert_eq!(a.key(), "merge:eda-qwen+instruct-qwen@0.6000");
    }

    #[test]
    fn registered_models_resolve_by_name_and_evict() {
        let reg = registry();
        reg.register("canary", random_model(3));
        let (key, m) = reg.resolve_str("canary").expect("ok");
        assert_eq!(key, "canary");
        assert_eq!(m.arch().name, "reg");
        assert_eq!(reg.loaded(), vec!["canary".to_string()]);
        assert!(reg.evict("canary"));
        assert!(!reg.evict("canary"));
        assert!(reg.loaded().is_empty());
    }

    #[test]
    fn persist_path_sanitizes_keys_and_requires_a_dir() {
        let reg = registry();
        assert!(reg.persist_path("merge:a+b@0.5").is_none(), "no dir set");
        let dir = std::env::temp_dir().join("chipalign-reg-persist");
        let reg = registry().with_persist_dir(&dir);
        let path = reg
            .persist_path("merge:eda-qwen+instruct-qwen@0.6000")
            .expect("dir set");
        let name = path
            .file_name()
            .expect("name")
            .to_string_lossy()
            .into_owned();
        assert_eq!(name, "merge-eda-qwen-instruct-qwen-0-6000.calt");
        assert!(path.starts_with(&dir));
    }

    #[test]
    fn corrupt_file_spec_is_rejected_and_counted() {
        let dir = std::env::temp_dir().join("chipalign-reg-corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("damaged.calt");
        let ckpt = random_model(5).to_checkpoint().expect("ckpt");
        let mut bytes = format::encode(&ckpt).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");

        let reg = registry();
        let metrics = Arc::new(Metrics::new());
        reg.attach_metrics(Arc::clone(&metrics));
        let spec = format!("file:{}", path.display());
        let err = reg.resolve_str(&spec);
        assert!(
            matches!(err, Err(ServeError::Model(ModelError::Corrupt { .. }))),
            "got {err:?}"
        );
        assert_eq!(metrics.snapshot().checksum_failures, 1);
        assert!(reg.loaded().is_empty(), "damaged model must not be cached");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_resolves_of_one_merge_build_it_once() {
        let reg = registry();
        let spec = ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.5").expect("ok");
        let barrier = std::sync::Barrier::new(4);
        let models: Vec<Arc<TinyLm>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        reg.resolve(&spec).expect("resolve")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });
        for m in &models[1..] {
            assert!(
                Arc::ptr_eq(&models[0], m),
                "every concurrent resolver must share one materialization"
            );
        }
        assert_eq!(
            reg.loaded(),
            vec!["merge:eda-qwen+instruct-qwen@0.5000".to_string()]
        );
    }

    #[test]
    fn merge_cache_is_bounded_and_evictions_are_counted() {
        let reg = registry().with_merge_capacity(2);
        let metrics = Arc::new(Metrics::new());
        reg.attach_metrics(Arc::clone(&metrics));
        reg.register("canary", random_model(3));
        let spec =
            |l: &str| ModelSpec::parse(&format!("merge:eda-qwen+instruct-qwen@{l}")).expect("ok");
        reg.resolve(&spec("0.1")).expect("ok");
        reg.resolve(&spec("0.2")).expect("ok");
        // Touch 0.1 so 0.2 becomes the least-recently-used merge.
        reg.resolve(&spec("0.1")).expect("ok");
        reg.resolve(&spec("0.3")).expect("ok");
        let loaded = reg.loaded();
        let key = |l: &str| format!("merge:eda-qwen+instruct-qwen@{l}000");
        assert!(loaded.contains(&key("0.1")), "recently used merge kept");
        assert!(loaded.contains(&key("0.3")), "newest merge kept");
        assert!(!loaded.contains(&key("0.2")), "LRU merge evicted");
        assert!(
            loaded.contains(&"canary".to_string()),
            "non-merge entries are exempt from the merge bound"
        );
        assert_eq!(metrics.snapshot().merge_evictions, 1);
    }

    #[test]
    fn kv_pools_are_per_model_allocation_and_die_with_their_model() {
        let reg = registry().with_kv_pool_config(KvPoolConfig {
            block_tokens: 8,
            max_blocks: 64,
            ..KvPoolConfig::default()
        });
        let a = reg.register("pool-a", random_model(1));
        let b = reg.register("pool-b", random_model(2));
        let pool_a = reg.kv_pool(&a);
        assert!(
            Arc::ptr_eq(&pool_a, &reg.kv_pool(&a)),
            "same allocation, same pool"
        );
        assert!(
            !Arc::ptr_eq(&pool_a, &reg.kv_pool(&b)),
            "each model allocation gets its own pool"
        );
        assert_eq!(pool_a.block_tokens(), 8);
        assert_eq!(pool_a.max_blocks(), 64);
        // Dropping every handle to a model prunes its pool slot.
        assert!(reg.evict("pool-a"));
        drop(a);
        let _ = reg.kv_pool(&b); // access prunes dead weak keys
        assert_eq!(
            reg.kv_pools
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            1
        );
    }

    #[test]
    fn kv8_suffix_marks_the_key_but_shares_the_base_model() {
        let reg = registry();
        let base = reg.register("canary", random_model(21));
        let (key, m) = reg.resolve_str("canary#kv8").expect("kv8 variant");
        assert_eq!(key, "canary#kv8");
        assert!(Arc::ptr_eq(&m, &base), "#kv8 must not clone the weights");
        assert_eq!(
            reg.loaded(),
            vec!["canary".to_string()],
            "no cache entry under the #kv8 key"
        );
        assert_eq!(reg.kv_dtype_for(&key), KvDtype::Int8);
        assert_eq!(reg.kv_dtype_for("canary"), KvDtype::F32);
    }

    #[test]
    fn kv8_composes_with_int8_in_either_order() {
        let reg = registry();
        reg.register("canary", random_model(22));
        let (a_key, a) = reg.resolve_str("canary#int8#kv8").expect("suffix order");
        let (b_key, b) = reg.resolve_str("canary#kv8#int8").expect("swapped order");
        assert_eq!(a_key, "canary#int8#kv8", "canonical order is #int8#kv8");
        assert_eq!(b_key, a_key, "both orders share one canonical key");
        assert!(Arc::ptr_eq(&a, &b), "both orders share one quantized clone");
        assert_eq!(a.dtype(), "int8");
    }

    #[test]
    fn stacked_or_buried_kv8_is_rejected() {
        let reg = registry();
        reg.register("canary", random_model(23));
        assert!(matches!(
            reg.resolve_str("canary#kv8#kv8"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            reg.resolve_str("canary#kv8#int8#kv8"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            reg.resolve_str("can#kv8ary"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            reg.resolve_str("no-such-model#kv8"),
            Err(ServeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn kv_pools_are_keyed_by_dtype_within_one_model() {
        let reg = registry();
        let m = reg.register("canary", random_model(24));
        let f32_pool = reg.kv_pool_for("canary", &m);
        let kv8_pool = reg.kv_pool_for("canary#kv8", &m);
        assert!(
            !Arc::ptr_eq(&f32_pool, &kv8_pool),
            "f32 and int8 sessions must not share a pool"
        );
        assert_eq!(f32_pool.dtype(), KvDtype::F32);
        assert_eq!(kv8_pool.dtype(), KvDtype::Int8);
        assert!(
            Arc::ptr_eq(&kv8_pool, &reg.kv_pool_for("canary#kv8", &m)),
            "same (allocation, dtype), same pool"
        );
        assert!(
            Arc::ptr_eq(&f32_pool, &reg.kv_pool(&m)),
            "kv_pool() is the configured-default-dtype pool"
        );
    }

    #[test]
    fn spec_specs_resolve_both_models_and_canonicalize() {
        let reg = registry();
        let target = reg.register("tgt", random_model(31));
        let draft = reg.register("drafty", random_model(32));
        let res = reg
            .resolve_spec_str("spec:tgt|drafty@4")
            .expect("resolve")
            .expect("has spec: prefix");
        assert_eq!(res.key, "spec:tgt|drafty@4");
        assert_eq!(res.target_key, "tgt");
        assert_eq!(res.k, 4);
        assert!(Arc::ptr_eq(&res.target, &target));
        assert!(Arc::ptr_eq(&res.draft, &draft));
        // Non-speculative specs fall through as None.
        assert!(reg.resolve_spec_str("tgt").expect("plain").is_none());
        // `resolve_str` serves the same grammar, returning the target (a
        // `load` of the spec key warms both ingredients).
        let (key, m) = reg.resolve_str("spec:tgt|drafty@4").expect("resolve_str");
        assert_eq!(key, "spec:tgt|drafty@4");
        assert!(Arc::ptr_eq(&m, &target));
    }

    #[test]
    fn spec_specs_bind_k_to_the_last_at_sign() {
        let reg = registry();
        let res = reg
            .resolve_spec_str("spec:merge:eda-qwen+instruct-qwen@0.60|instruct-qwen@2")
            .expect("resolve")
            .expect("speculative");
        assert_eq!(
            res.key, "spec:merge:eda-qwen+instruct-qwen@0.6000|instruct-qwen@2",
            "merge λ normalizes inside the target segment, k binds last"
        );
        assert_eq!(res.target_key, "merge:eda-qwen+instruct-qwen@0.6000");
        assert_eq!(res.k, 2);
        let loaded = reg.loaded();
        assert!(
            loaded.contains(&"merge:eda-qwen+instruct-qwen@0.6000".to_string()),
            "target cached under its own key"
        );
        assert!(
            loaded.contains(&"instruct-qwen".to_string()),
            "draft warmed too"
        );
    }

    #[test]
    fn spec_specs_validate_shape_k_and_vocab() {
        let reg = registry();
        reg.register("tgt", random_model(33));
        reg.register("drafty", random_model(34));
        for bad in [
            "spec:tgt|drafty",       // no @k
            "spec:tgt@4",            // no |draft
            "spec:tgt|drafty@zero",  // unparsable k
            "spec:tgt|drafty@0",     // k below 1
            "spec:tgt|spec:a|b@2@4", // nested speculation
        ] {
            assert!(
                matches!(
                    reg.resolve_spec_str(bad),
                    Err(ServeError::BadRequest { .. })
                ),
                "{bad:?} must be rejected"
            );
        }
        let too_long = format!("spec:tgt|drafty@{}", SPEC_K_MAX + 1);
        assert!(matches!(
            reg.resolve_spec_str(&too_long),
            Err(ServeError::BadRequest { .. })
        ));
        let ok = format!("spec:tgt|drafty@{SPEC_K_MAX}");
        assert!(reg.resolve_spec_str(&ok).expect("resolve").is_some());
        assert!(matches!(
            reg.resolve_spec_str("spec:tgt|no-such-model@2"),
            Err(ServeError::UnknownModel { .. })
        ));
        // A draft with a different vocabulary can never be verified.
        let mut arch = ArchSpec::tiny("reg");
        arch.vocab_size = 98;
        let small = TinyLm::new(&arch, &mut Pcg32::seed(35)).expect("model");
        reg.register("small-vocab", small);
        assert!(matches!(
            reg.resolve_spec_str("spec:tgt|small-vocab@2"),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn kv_dtype_routing_follows_the_spec_target_segment() {
        let reg = registry();
        reg.register("tgt", random_model(36));
        assert_eq!(reg.kv_dtype_for("spec:tgt#kv8|drafty@4"), KvDtype::Int8);
        assert_eq!(reg.kv_dtype_for("spec:tgt|drafty#kv8@4"), KvDtype::F32);
        assert_eq!(reg.kv_dtype_for("spec:tgt|drafty@4"), KvDtype::F32);
    }

    #[test]
    fn all_zoo_models_have_unique_slugs() {
        let models = all_zoo_models();
        assert_eq!(models.len(), 11);
        let mut slugs: Vec<String> = models.iter().map(|m| m.slug()).collect();
        slugs.sort();
        slugs.dedup();
        assert_eq!(slugs.len(), 11, "slugs must be unique");
        for m in models {
            assert_eq!(zoo_model_from_slug(&m.slug()), Some(m));
        }
    }
}

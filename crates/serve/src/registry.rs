//! The model registry: every checkpoint the server can put behind a spec.
//!
//! Three kinds of spec resolve to a servable model:
//!
//! * **Zoo slugs** (`instruct-qwen`, `eda-qwen`, `chipnemo`, …) — trained
//!   on demand by [`chipalign_pipeline::zoo::Zoo`] and loaded from its
//!   on-disk cache (`artifacts/zoo`) when present.
//! * **Geodesic merges** (`merge:<chip>+<instruct>@<λ>`) — materialized on
//!   demand with [`chipalign_merge::GeodesicMerge`] from two zoo
//!   ingredients and cached per λ, so hot-swapping a served model to a new
//!   interpolation point is one `load` request, no restart.
//! * **Checkpoint files** (`file:<path>.calt`) — loaded with
//!   [`chipalign_model::format`].
//!
//! All materialized models live behind `Arc`s in one cache keyed by a
//! canonical spec string; [`ModelRegistry::register`] inserts programmatic
//! models (tests, canaries) under arbitrary names.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use chipalign_merge::{GeodesicMerge, Merger};
use chipalign_model::format;
use chipalign_nn::TinyLm;
use chipalign_pipeline::zoo::{Backbone, Zoo, ZooModel};

use crate::ServeError;

/// Every zoo model the registry can name.
#[must_use]
pub fn all_zoo_models() -> Vec<ZooModel> {
    let mut models = Vec::new();
    for b in [
        Backbone::QwenTiny,
        Backbone::LlamaTiny,
        Backbone::LlamaLarge,
    ] {
        models.push(ZooModel::Base(b));
        models.push(ZooModel::Instruct(b));
    }
    models.push(ZooModel::Eda(Backbone::QwenTiny));
    models.push(ZooModel::Eda(Backbone::LlamaTiny));
    models.push(ZooModel::ChipNemo);
    models.push(ZooModel::GeneralStrong);
    models.push(ZooModel::RagEda);
    models
}

fn zoo_model_from_slug(slug: &str) -> Option<ZooModel> {
    all_zoo_models().into_iter().find(|m| m.slug() == slug)
}

/// A parsed model specification.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A zoo model by slug.
    Zoo(ZooModel),
    /// A ChipAlign geodesic merge of two zoo models at `lambda`.
    Merged {
        /// The domain-adapted ingredient (first merge argument).
        chip: ZooModel,
        /// The instruction-aligned ingredient.
        instruct: ZooModel,
        /// The interpolation point in `[0, 1]`.
        lambda: f32,
    },
    /// A checkpoint file in the crate's `.calt` format.
    File(PathBuf),
}

impl ModelSpec {
    /// Parses a spec string.
    ///
    /// Grammar: `<zoo-slug>` | `merge:<chip-slug>+<instruct-slug>@<λ>` |
    /// `file:<path>`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] for unknown slugs and
    /// [`ServeError::BadRequest`] for malformed merge specs.
    pub fn parse(spec: &str) -> Result<Self, ServeError> {
        let spec = spec.trim();
        if let Some(path) = spec.strip_prefix("file:") {
            if path.is_empty() {
                return Err(ServeError::BadRequest {
                    detail: "file: spec needs a path".into(),
                });
            }
            return Ok(ModelSpec::File(PathBuf::from(path)));
        }
        if let Some(rest) = spec.strip_prefix("merge:") {
            let (pair, lambda_str) =
                rest.rsplit_once('@')
                    .ok_or_else(|| ServeError::BadRequest {
                        detail: format!("merge spec {spec:?} needs `@<lambda>`"),
                    })?;
            let (chip_slug, instruct_slug) =
                pair.split_once('+').ok_or_else(|| ServeError::BadRequest {
                    detail: format!("merge spec {spec:?} needs `<chip>+<instruct>`"),
                })?;
            let chip = zoo_model_from_slug(chip_slug).ok_or_else(|| ServeError::UnknownModel {
                spec: chip_slug.to_string(),
            })?;
            let instruct =
                zoo_model_from_slug(instruct_slug).ok_or_else(|| ServeError::UnknownModel {
                    spec: instruct_slug.to_string(),
                })?;
            let lambda: f32 = lambda_str.parse().map_err(|_| ServeError::BadRequest {
                detail: format!("bad lambda {lambda_str:?} in {spec:?}"),
            })?;
            if !lambda.is_finite() || !(0.0..=1.0).contains(&lambda) {
                return Err(ServeError::BadRequest {
                    detail: format!("lambda must lie in [0, 1], got {lambda}"),
                });
            }
            return Ok(ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            });
        }
        zoo_model_from_slug(spec)
            .map(ModelSpec::Zoo)
            .ok_or_else(|| ServeError::UnknownModel {
                spec: spec.to_string(),
            })
    }

    /// The canonical cache key (λ normalized to four decimals so `0.6` and
    /// `0.60` hit the same entry).
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            ModelSpec::Zoo(m) => m.slug(),
            ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            } => format!("merge:{}+{}@{:.4}", chip.slug(), instruct.slug(), lambda),
            ModelSpec::File(p) => format!("file:{}", p.display()),
        }
    }
}

/// The registry: zoo access plus a cache of materialized models.
pub struct ModelRegistry {
    zoo: Zoo,
    cache: Mutex<HashMap<String, Arc<TinyLm>>>,
    /// Serializes expensive materializations (training, merging) so two
    /// concurrent requests for the same λ build it once.
    build_lock: Mutex<()>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ModelRegistry({:?}, {} cached)",
            self.zoo,
            self.loaded().len()
        )
    }
}

impl ModelRegistry {
    /// Creates a registry over a zoo.
    #[must_use]
    pub fn new(zoo: Zoo) -> Self {
        ModelRegistry {
            zoo,
            cache: Mutex::new(HashMap::new()),
            build_lock: Mutex::new(()),
        }
    }

    /// The backing zoo.
    #[must_use]
    pub fn zoo(&self) -> &Zoo {
        &self.zoo
    }

    /// Registers a model under an arbitrary name (hot-swap path for
    /// programmatically built checkpoints), replacing any previous entry.
    pub fn register(&self, name: &str, model: TinyLm) -> Arc<TinyLm> {
        let arc = Arc::new(model);
        self.cache
            .lock()
            .expect("registry lock")
            .insert(name.to_string(), Arc::clone(&arc));
        arc
    }

    /// Resolves a spec string to a servable model, materializing it on
    /// first use. Returns the canonical key together with the model.
    ///
    /// # Errors
    ///
    /// Returns spec-parse errors, and forwards zoo-training, merge, and
    /// checkpoint-I/O failures.
    pub fn resolve_str(&self, spec: &str) -> Result<(String, Arc<TinyLm>), ServeError> {
        // Registered names take priority and need no parse.
        if let Some(m) = self.cache.lock().expect("registry lock").get(spec.trim()) {
            return Ok((spec.trim().to_string(), Arc::clone(m)));
        }
        let parsed = ModelSpec::parse(spec)?;
        let model = self.resolve(&parsed)?;
        Ok((parsed.key(), model))
    }

    /// Resolves a parsed spec, materializing it on first use.
    ///
    /// # Errors
    ///
    /// Forwards zoo-training, merge, and checkpoint-I/O failures.
    pub fn resolve(&self, spec: &ModelSpec) -> Result<Arc<TinyLm>, ServeError> {
        let key = spec.key();
        if let Some(m) = self.cache.lock().expect("registry lock").get(&key) {
            return Ok(Arc::clone(m));
        }
        // Build outside the cache lock (materialization can take seconds to
        // minutes) but under the build lock so concurrent misses for the
        // same key don't duplicate the work.
        let _build = self.build_lock.lock().expect("registry build lock");
        if let Some(m) = self.cache.lock().expect("registry lock").get(&key) {
            return Ok(Arc::clone(m));
        }
        let built = Arc::new(self.materialize(spec)?);
        self.cache
            .lock()
            .expect("registry lock")
            .insert(key, Arc::clone(&built));
        Ok(built)
    }

    fn materialize(&self, spec: &ModelSpec) -> Result<TinyLm, ServeError> {
        match spec {
            ModelSpec::Zoo(m) => Ok(self.zoo.model(*m)?),
            ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            } => {
                let chip_ckpt = self.zoo.model(*chip)?.to_checkpoint()?;
                let instruct_ckpt = self.zoo.model(*instruct)?.to_checkpoint()?;
                let merged = GeodesicMerge::new(*lambda)?.merge_pair(&chip_ckpt, &instruct_ckpt)?;
                Ok(TinyLm::from_checkpoint(&merged)?)
            }
            ModelSpec::File(path) => {
                let ckpt = format::load(path)?;
                Ok(TinyLm::from_checkpoint(&ckpt)?)
            }
        }
    }

    /// Evicts a materialized model; returns whether anything was removed.
    /// The next request for the spec rebuilds it (hot-swap after a zoo
    /// cache update).
    pub fn evict(&self, spec: &str) -> bool {
        let key = match ModelSpec::parse(spec) {
            Ok(parsed) => parsed.key(),
            Err(_) => spec.trim().to_string(),
        };
        let mut cache = self.cache.lock().expect("registry lock");
        cache.remove(&key).is_some() || cache.remove(spec.trim()).is_some()
    }

    /// Cache keys of every materialized model, sorted.
    #[must_use]
    pub fn loaded(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .cache
            .lock()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_pipeline::zoo::{Quality, ZooConfig};
    use chipalign_tensor::rng::Pcg32;

    fn registry() -> ModelRegistry {
        let zoo = Zoo::new(ZooConfig {
            quality: Quality::Smoke,
            seed: 7,
            cache_dir: None,
        })
        .expect("zoo");
        ModelRegistry::new(zoo)
    }

    fn random_model(seed: u64) -> TinyLm {
        let mut arch = ArchSpec::tiny("reg");
        arch.vocab_size = 99;
        TinyLm::new(&arch, &mut Pcg32::seed(seed)).expect("model")
    }

    #[test]
    fn spec_parsing_accepts_the_three_forms() {
        assert_eq!(
            ModelSpec::parse("instruct-qwen").expect("ok"),
            ModelSpec::Zoo(ZooModel::Instruct(Backbone::QwenTiny))
        );
        match ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.6").expect("ok") {
            ModelSpec::Merged {
                chip,
                instruct,
                lambda,
            } => {
                assert_eq!(chip, ZooModel::Eda(Backbone::QwenTiny));
                assert_eq!(instruct, ZooModel::Instruct(Backbone::QwenTiny));
                assert!((lambda - 0.6).abs() < 1e-6);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            ModelSpec::parse("file:artifacts/zoo/x.calt").expect("ok"),
            ModelSpec::File(_)
        ));
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(matches!(
            ModelSpec::parse("no-such-model"),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:eda-qwen+instruct-qwen"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:eda-qwen+instruct-qwen@1.5"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:eda-qwen+instruct-qwen@nan"),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("merge:bogus+instruct-qwen@0.5"),
            Err(ServeError::UnknownModel { .. })
        ));
        assert!(matches!(
            ModelSpec::parse("file:"),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn merged_keys_normalize_lambda_formatting() {
        let a = ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.6").expect("ok");
        let b = ModelSpec::parse("merge:eda-qwen+instruct-qwen@0.60").expect("ok");
        assert_eq!(a.key(), b.key());
        assert_eq!(a.key(), "merge:eda-qwen+instruct-qwen@0.6000");
    }

    #[test]
    fn registered_models_resolve_by_name_and_evict() {
        let reg = registry();
        reg.register("canary", random_model(3));
        let (key, m) = reg.resolve_str("canary").expect("ok");
        assert_eq!(key, "canary");
        assert_eq!(m.arch().name, "reg");
        assert_eq!(reg.loaded(), vec!["canary".to_string()]);
        assert!(reg.evict("canary"));
        assert!(!reg.evict("canary"));
        assert!(reg.loaded().is_empty());
    }

    #[test]
    fn all_zoo_models_have_unique_slugs() {
        let models = all_zoo_models();
        assert_eq!(models.len(), 11);
        let mut slugs: Vec<String> = models.iter().map(|m| m.slug()).collect();
        slugs.sort();
        slugs.dedup();
        assert_eq!(slugs.len(), 11, "slugs must be unique");
        for m in models {
            assert_eq!(zoo_model_from_slug(&m.slug()), Some(m));
        }
    }
}

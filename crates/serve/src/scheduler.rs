//! The session scheduler: continuous batching over a worker pool.
//!
//! Every admitted request becomes a *session* owning its own
//! [`chipalign_nn::StepDecoder`] (and therefore its own KV cache). Workers
//! repeatedly pop a session from a shared run queue, decode a short *slice*
//! of tokens, and push the session back if it isn't finished. That
//! round-robin slicing is the continuous-batching property: a 1000-token
//! generation never blocks a 10-token one for more than a slice, new
//! sessions join the rotation the moment a worker frees up, and with `W`
//! workers up to `W` sessions decode truly in parallel.
//!
//! # Batched decoding
//!
//! With [`SchedulerConfig::max_batch`] above 1, a worker drains up to
//! `max_batch` runnable sessions in one pop and advances them *together*
//! through [`StepDecoder::step_batch`], which turns the per-token
//! projection matvecs into one skinny GEMM per projection across the whole
//! batch. Because the batched kernel is bit-identical to stepping each
//! session alone (pinned by tests in `chipalign-nn` and `chipalign-tensor`),
//! batching changes throughput and nothing else: greedy transcripts are
//! byte-identical at every `max_batch`. A batch of one falls back to the
//! unbatched [`run_slice`] path, so `max_batch == 1` reproduces the old
//! scheduler exactly.
//!
//! # Speculative sessions
//!
//! A request may carry a [`SpecDraft`] pairing: a cheap draft model plus a
//! per-round draft length. Greedy sessions then decode through a
//! [`chipalign_nn::SpecDecoder`] — the draft proposes, the target verifies
//! the proposals in one batched forward, and the longest agreeing prefix
//! is accepted — with output bytes identical to plain decoding *by
//! construction*. The scheduler treats a speculative session like any
//! other: it occupies one admission slot, rotates through the same slices,
//! and surrenders one token per `step` call (extra accepted tokens stay
//! buffered inside the decoder), so fairness and watchdog accounting are
//! unchanged. In batched slices, speculative members advance individually
//! under their own panic guard while plain batch-mates share the joint
//! batched step. A panicking draft disables speculation for that session
//! only — it degrades to plain decoding mid-stream with no transcript
//! change (the PR 2 fault contract); [`SchedulerConfig::spec_draft`] is
//! the fleet-wide kill switch that makes every draft pairing a no-op.
//!
//! # Chunked prefill and shared-prefix reuse
//!
//! Prompts are *not* prefilled monolithically: a session dequeued in
//! [`TaskState::Pending`] state prefills at most
//! [`SchedulerConfig::prefill_chunk`] tokens per slice and rotates in
//! [`TaskState::Prefilling`] state until its prompt window is in the
//! cache, so a long prompt never pins a worker for more than one chunk —
//! short sessions behind it keep decoding (the head-of-line fix, pinned by
//! a test). Deferred context-window slides replay through the same
//! chunked path. Before prefilling at all, the scheduler probes a
//! [`PrefixCache`] with the prompt window: on a longest-match hit the
//! session adopts a forked KV cache of the shared prefix and only
//! prefills the remainder. Both mechanisms are bit-transparent: chunked,
//! prefix-seeded transcripts are byte-identical to cold monolithic
//! prefill (equivalence tests pin this).
//!
//! Admission control is a hard bound on sessions in flight (queued +
//! running): beyond it, [`Scheduler::submit`] fails fast with
//! [`ServeError::Overloaded`] instead of buffering without limit. Pooled
//! sessions (a [`KvPool`] attached to the request) are additionally
//! admitted by *free blocks*: if the pool cannot cover the prompt window,
//! reusable prefix-cache snapshots are evicted LRU-first (counted in
//! `pool_evictions`), and a session that still does not fit is rejected
//! with [`ServeError::PoolSaturated`] — the same overloaded wire class,
//! so clients back off. Each
//! session may carry a deadline, checked between decode steps, so a stuck
//! or oversized request cannot pin a worker forever. [`Scheduler::shutdown`]
//! stops admissions; workers then drain every queued session to completion
//! before exiting, which is what makes server shutdown graceful.
//!
//! # Fault tolerance
//!
//! Every decode slice runs under [`std::panic::catch_unwind`], so a panic
//! inside one session — a poisoned checkpoint, a decoder bug — cancels
//! *that* session with a structured [`ServeError::WorkerPanic`] while the
//! worker moves on to the next one. A panic that escapes the slice guard
//! (the worker loop itself dying) is caught one level up and the worker
//! re-enters its loop, so the pool's capacity survives; the session it was
//! holding is reported to its client as a structured internal error by the
//! session's drop guard, never as a silent hang.
//!
//! A tick-based *watchdog* covers the remaining failure mode: a session
//! that stays alive but stops producing tokens. Progress is measured in
//! scheduler slices, not wall-clock time, so the check is deterministic
//! under test; after [`SchedulerConfig::stall_slices`] consecutive
//! zero-progress slices the session is cancelled with
//! [`ServeError::Stalled`], which maps to the `deadline_exceeded` wire
//! code.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use chipalign_nn::generate::{GenerateConfig, StepDecoder};
use chipalign_nn::{KvDtype, KvPool, SpecDecoder, TinyLm};

use crate::metrics::Metrics;
use crate::prefix::{PrefixCache, PrefixCacheConfig};
use crate::protocol::FinishReason;
use crate::ServeError;

/// How many times a dead worker re-enters its loop before giving up and
/// letting the thread exit (a backstop against a deterministic panic on
/// the pop path itself looping forever).
const MAX_RESPAWNS: u32 = 8;

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads decoding sessions in parallel.
    pub workers: usize,
    /// Hard bound on sessions in flight (queued + running); submissions
    /// beyond it are rejected with `Overloaded`.
    pub max_sessions: usize,
    /// Tokens decoded per scheduling slice before a session rotates to the
    /// back of the queue. Smaller = fairer, larger = less queue churn.
    pub slice_tokens: usize,
    /// Consecutive scheduler slices a session may spend making zero token
    /// progress before the watchdog cancels it with a
    /// `deadline_exceeded`-class error. `0` disables the watchdog. The
    /// unit is slices, not seconds, so watchdog behaviour is deterministic
    /// in tests.
    pub stall_slices: u64,
    /// Most sessions a worker advances together per slice. `1` reproduces
    /// the unbatched scheduler exactly; larger values amortize weight
    /// traversal across sessions via the skinny-GEMM decode path without
    /// changing any output byte. Clamped at start-up to
    /// `[1, GEMM_SKINNY_M_MAX]` — beyond the skinny tile the batched step
    /// would leave the kernel that guarantees bit-identity.
    pub max_batch: usize,
    /// Most prompt (or window-slide replay) tokens prefilled per
    /// scheduling slice. A prompt longer than this rotates through the
    /// queue in `Prefilling` state between chunks, so long prompts cannot
    /// head-of-line-block other sessions' decode slices. Clamped to at
    /// least 1. Chunking never changes output bytes.
    pub prefill_chunk: usize,
    /// Bounds for the shared-prefix KV cache consulted at first dequeue;
    /// `max_entries: 0` disables prefix reuse.
    pub prefix_cache: PrefixCacheConfig,
    /// Whether sessions carrying a [`SpecDraft`] actually speculate.
    /// `false` is the kill switch: draft pairings are ignored and the
    /// session decodes plainly. Flipping this is always output-safe —
    /// speculative and plain greedy transcripts are byte-identical.
    pub spec_draft: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .min(8),
            // Sessions share one model allocation (`Arc<TinyLm>` inside
            // every KV cache), so the per-session footprint is just the
            // cache itself — in-flight capacity can sit well above the old
            // weights-per-session bound.
            max_sessions: 256,
            slice_tokens: 8,
            stall_slices: 32,
            max_batch: 8,
            prefill_chunk: 32,
            prefix_cache: PrefixCacheConfig::default(),
            spec_draft: true,
        }
    }
}

/// A speculative-decoding pairing attached to a session: the cheap
/// proposer plus how many tokens it drafts per round.
#[derive(Debug, Clone)]
pub struct SpecDraft {
    /// The draft model. Its vocabulary must match the session model's
    /// (enforced when the decoder is built).
    pub model: Arc<TinyLm>,
    /// Tokens drafted per round, in `[1, chipalign_nn::SPEC_K_MAX]`.
    pub k: usize,
}

/// One admitted generation request.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// The model to decode with.
    pub model: Arc<TinyLm>,
    /// Prompt token ids (non-empty).
    pub prompt: Vec<u32>,
    /// Decoding configuration (validated at prefill).
    pub cfg: GenerateConfig,
    /// Absolute deadline; checked between decode steps.
    pub deadline: Option<Instant>,
    /// Free-form session label (the server passes the canonical model
    /// key); used to scope injected faults to specific sessions in chaos
    /// tests.
    pub tag: String,
    /// Paged KV pool backing this session's cache. `None` decodes with a
    /// contiguous cache (library and test use); the server always attaches
    /// the model's pool. With a pool, admission also requires enough free
    /// blocks for the prompt window — evicting reusable prefix snapshots
    /// first — and rejects with [`ServeError::PoolSaturated`] otherwise.
    pub pool: Option<Arc<KvPool>>,
    /// Speculative draft pairing. `None` decodes plainly; with a draft
    /// (and [`SchedulerConfig::spec_draft`] on), greedy sessions wrap
    /// their decoder in a [`SpecDecoder`] — identical output bytes, fewer
    /// target forwards when the draft agrees.
    pub draft: Option<SpecDraft>,
}

/// A finished session's payload.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The new tokens, in order.
    pub tokens: Vec<u32>,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// Microseconds between admission and the first decode slice.
    pub queue_us: u64,
    /// Microseconds between admission and completion.
    pub total_us: u64,
}

/// What a worker sends back when a session leaves the system.
pub type SessionOutcome = Result<SessionResult, ServeError>;

/// A session's live decoding state: a plain step decoder, or one wrapped
/// in a [`SpecDecoder`] when the request carried a draft pairing. The
/// accessors delegate the `StepDecoder` surface the scheduler needs
/// (prefill, prefix adoption, completion queries) to the target decoder;
/// stepping dispatches on the variant. Batched slices advance `Plain`
/// members jointly through `step_batch` and `Spec` members individually —
/// a speculative round is inherently per-session work.
enum SessionDecoder {
    Plain(StepDecoder),
    Spec(SpecDecoder),
}

impl SessionDecoder {
    fn target(&self) -> &StepDecoder {
        match self {
            SessionDecoder::Plain(d) => d,
            SessionDecoder::Spec(s) => s.target(),
        }
    }

    fn target_mut(&mut self) -> &mut StepDecoder {
        match self {
            SessionDecoder::Plain(d) => d,
            SessionDecoder::Spec(s) => s.target_mut(),
        }
    }

    fn is_prefilling(&self) -> bool {
        self.target().is_prefilling()
    }

    fn step(&mut self) -> Result<Option<u32>, chipalign_nn::NnError> {
        match self {
            SessionDecoder::Plain(d) => d.step(),
            SessionDecoder::Spec(s) => s.step(),
        }
    }
}

enum TaskState {
    /// Prompt not yet prefilled (prefill happens on a worker, not on the
    /// submitting connection thread).
    Pending(SessionRequest),
    /// Mid-prefill: part of the prompt window (or a deferred window-slide
    /// replay) is still outside the KV cache. The session advances one
    /// bounded chunk per slice and rotates, so other sessions' decode
    /// slices interleave with a long prompt's prefill.
    Prefilling {
        decoder: SessionDecoder,
        deadline: Option<Instant>,
    },
    /// Mid-generation.
    Running {
        decoder: SessionDecoder,
        deadline: Option<Instant>,
    },
    /// Placeholder left behind while a slice borrows the real state. Only
    /// observable after a panic interrupted a slice; decoding a tombstone
    /// is reported as a structured internal error, never a second panic.
    Tombstone,
}

struct Task {
    state: TaskState,
    /// Session label for fault-rule matching (see [`SessionRequest::tag`]).
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    tag: String,
    produced: Vec<u32>,
    reply: Sender<SessionOutcome>,
    admitted: Instant,
    queue_us: Option<u64>,
    /// Consecutive scheduled slices with zero token progress.
    stalled_slices: u64,
    /// Shared in-flight counter, held so the drop guard can release the
    /// admission slot even when the task dies with its worker.
    active: Arc<AtomicUsize>,
    /// Set by `finish`; suppresses the drop guard on the normal path.
    finished: bool,
}

impl Drop for Task {
    /// Last-resort cleanup: if a task is dropped without being finished —
    /// its worker thread died mid-slice — the client still gets a
    /// structured error instead of a hung channel, and the admission slot
    /// is released so capacity doesn't leak.
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        let _ = self.reply.send(Err(ServeError::Internal {
            detail: "session lost: worker died mid-slice".to_string(),
        }));
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

struct Inner {
    cfg: SchedulerConfig,
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    /// Sessions in flight: queued + currently on a worker.
    active: Arc<AtomicUsize>,
    draining: AtomicBool,
    /// Hard-stop flag ([`Scheduler::abort`]): workers exit without
    /// draining the queue; leftover sessions are answered with
    /// `ShuttingDown` instead of decoding to completion.
    aborting: AtomicBool,
    metrics: Arc<Metrics>,
    /// Shared-prefix KV cache, probed at first dequeue and fed with every
    /// freshly prefilled prompt window.
    prefix: PrefixCache,
}

/// The scheduler: a run queue plus its worker pool.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scheduler({} workers, {} active)",
            self.inner.cfg.workers,
            self.inner.active.load(Ordering::Relaxed)
        )
    }
}

/// Locks the run queue, recovering from poisoning. Decoding happens
/// outside this lock, so a session panic can only interrupt plain queue
/// operations that never leave the deque in a torn state — recovering the
/// guard is sound and keeps one poisoned session from wedging the pool.
fn lock_queue(inner: &Inner) -> MutexGuard<'_, VecDeque<Task>> {
    inner.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(cfg: SchedulerConfig, metrics: Arc<Metrics>) -> Self {
        #[cfg(feature = "fault-inject")]
        quiet_worker_panics();
        let cfg = SchedulerConfig {
            workers: cfg.workers.max(1),
            max_sessions: cfg.max_sessions.max(1),
            slice_tokens: cfg.slice_tokens.max(1),
            stall_slices: cfg.stall_slices,
            max_batch: cfg
                .max_batch
                .clamp(1, chipalign_tensor::tune::GEMM_SKINNY_M_MAX),
            prefill_chunk: cfg.prefill_chunk.max(1),
            prefix_cache: cfg.prefix_cache,
            spec_draft: cfg.spec_draft,
        };
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            active: Arc::new(AtomicUsize::new(0)),
            draining: AtomicBool::new(false),
            aborting: AtomicBool::new(false),
            metrics,
            prefix: PrefixCache::new(cfg.prefix_cache),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("chipalign-serve-worker-{i}"))
                    .spawn(move || worker_main(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Sessions in flight (queued + running).
    #[must_use]
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::SeqCst)
    }

    /// Admits a session, returning the channel its outcome will arrive on.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] once draining has begun and
    /// [`ServeError::Overloaded`] when the in-flight bound is reached; both
    /// fail fast without queueing.
    pub fn submit(&self, req: SessionRequest) -> Result<Receiver<SessionOutcome>, ServeError> {
        let inner = &self.inner;
        inner.metrics.on_request();
        if inner.draining.load(Ordering::SeqCst) {
            inner.metrics.on_rejected_shutdown();
            return Err(ServeError::ShuttingDown);
        }
        // Block-granular admission for pooled sessions: the prompt window
        // must be coverable by free blocks. Cached prefix snapshots are
        // reclaimable — evict them LRU-first until the session fits or the
        // cache is empty. (Blocks are allocated lazily during prefill, so
        // this check is a capacity gate, not a reservation; mid-decode
        // growth past the pool still fails the session with a structured
        // `PoolExhausted`, which also maps to the overloaded wire code.)
        if let Some(pool) = &req.pool {
            let window = req.prompt.len().min(req.model.arch().max_seq_len);
            let needed = pool.blocks_for(window);
            while pool.blocks_free() < needed {
                if !inner.prefix.evict_one() {
                    break;
                }
                inner.metrics.on_pool_eviction();
            }
            let free = pool.blocks_free();
            if free < needed {
                inner.metrics.on_rejected_overload();
                return Err(ServeError::PoolSaturated { needed, free });
            }
        }
        // Reserve a slot atomically so concurrent submissions cannot
        // overshoot the bound.
        let capacity = inner.cfg.max_sessions;
        if inner
            .active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < capacity).then_some(n + 1)
            })
            .is_err()
        {
            inner.metrics.on_rejected_overload();
            return Err(ServeError::Overloaded {
                active: inner.active.load(Ordering::SeqCst),
                capacity,
            });
        }
        inner.metrics.on_admitted(req.prompt.len());
        let (tx, rx) = std::sync::mpsc::channel();
        let tag = req.tag.clone();
        let task = Task {
            state: TaskState::Pending(req),
            tag,
            produced: Vec::new(),
            reply: tx,
            admitted: Instant::now(),
            queue_us: None,
            stalled_slices: 0,
            active: Arc::clone(&inner.active),
            finished: false,
        };
        lock_queue(inner).push_back(task);
        inner.available.notify_one();
        Ok(rx)
    }

    /// Stops admitting new sessions. Already-admitted sessions keep
    /// decoding until they finish.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
    }

    /// Hard stop, the opposite of the graceful drain: stops admissions
    /// *and* abandons queued sessions, answering each with a structured
    /// [`ServeError::ShuttingDown`] instead of decoding it to completion.
    /// Sessions already on a worker finish their current slice and are
    /// then answered the same way. This models a replica being killed —
    /// the fleet chaos suite uses it to take whole replicas down
    /// mid-decode — and every admitted session still gets exactly one
    /// structured (retryable) reply, never silence or a truncated
    /// transcript.
    pub fn abort(&self) {
        self.inner.aborting.store(true, Ordering::SeqCst);
        self.inner.draining.store(true, Ordering::SeqCst);
        let abandoned: Vec<Task> = lock_queue(&self.inner).drain(..).collect();
        for task in abandoned {
            fail_finish(&self.inner, task, ServeError::ShuttingDown);
        }
        self.inner.available.notify_all();
    }

    /// Initiates shutdown and blocks until every worker has drained the
    /// queue and exited. After an [`Scheduler::abort`], workers exit
    /// without draining; any session they requeued on the way out is
    /// answered here with `ShuttingDown` so no admitted session is ever
    /// left unanswered.
    pub fn join(&self) {
        self.shutdown();
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        // Graceful drains leave the queue empty; only the abort path has
        // leftovers.
        let leftovers: Vec<Task> = lock_queue(&self.inner).drain(..).collect();
        for task in leftovers {
            fail_finish(&self.inner, task, ServeError::ShuttingDown);
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.join();
    }
}

/// Worker thread entry point: re-enters the pop/decode loop if it dies
/// from a panic that escaped the per-slice guard, so one bad pop doesn't
/// permanently shrink the pool.
fn worker_main(inner: &Inner) {
    let mut respawns = 0u32;
    loop {
        match std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(inner))) {
            Ok(()) => return, // clean drain
            Err(_) => {
                inner.metrics.on_worker_respawned();
                respawns += 1;
                if respawns > MAX_RESPAWNS {
                    return;
                }
            }
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let mut batch = {
            let mut queue = lock_queue(inner);
            loop {
                // Abort beats a non-empty queue: the worker leaves
                // immediately and `join` answers whatever remains.
                if inner.aborting.load(Ordering::SeqCst) {
                    return;
                }
                if !queue.is_empty() {
                    // Drain up to `max_batch` runnable sessions in one pop:
                    // everything taken here advances together this slice.
                    let take = inner.cfg.max_batch.min(queue.len());
                    break queue.drain(..take).collect::<Vec<Task>>();
                }
                if inner.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        #[cfg(feature = "fault-inject")]
        {
            // Panic *outside* the slice guard: kills this worker_loop call
            // outright. The drop guard of every task in the batch reports
            // its session; the respawn path in worker_main restores pool
            // capacity.
            if batch
                .iter()
                .any(|t| crate::faults::should_fire(crate::faults::Site::WorkerDeath, &t.tag))
            {
                panic!("injected worker death");
            }
        }
        inner.metrics.on_batch(batch.len());
        if batch.len() == 1 {
            if let Some(task) = batch.pop() {
                run_slice(inner, task);
            }
        } else {
            run_batch_slice(inner, batch);
        }
    }
}

/// Runs one decode slice under a panic guard and routes the outcome:
/// requeue, completion, structured error, or panic-turned-error.
fn run_slice(inner: &Inner, mut task: Task) {
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| decode_slice(inner, &mut task)));
    match outcome {
        Ok(Ok(SliceStatus::Continue)) => {
            // Slice exhausted with the session still alive: rotate to the
            // back of the queue so other sessions get their turn.
            lock_queue(inner).push_back(task);
            inner.available.notify_one();
        }
        Ok(Ok(SliceStatus::Done(result))) => {
            inner
                .metrics
                .on_completed(result.tokens.len(), result.total_us);
            finish(inner, task, Ok(result));
        }
        Ok(Err(e)) => fail_finish(inner, task, e),
        Err(payload) => {
            // The slice panicked. The decoder is gone (its frame unwound),
            // but the task survived: cancel just this session and keep the
            // worker serving.
            inner.metrics.on_worker_panic();
            let detail = panic_detail(payload.as_ref());
            finish(inner, task, Err(ServeError::WorkerPanic { detail }));
        }
    }
}

/// Routes a structured failure: classifies it for metrics, then delivers
/// it. Panics are counted once where they are caught, not here.
fn fail_finish(inner: &Inner, task: Task, e: ServeError) {
    match &e {
        ServeError::DeadlineExceeded { .. } => inner.metrics.on_deadline_exceeded(),
        ServeError::Stalled { .. } => inner.metrics.on_watchdog_cancel(),
        ServeError::WorkerPanic { .. } => {}
        // Abort-path abandonment: the session was turned away, not broken.
        ServeError::ShuttingDown => inner.metrics.on_rejected_shutdown(),
        _ => inner.metrics.on_failed(),
    }
    finish(inner, task, Err(e));
}

/// One member of a batched slice: the task plus its live decoder state.
struct BatchMember {
    task: Task,
    decoder: SessionDecoder,
    deadline: Option<Instant>,
    /// `produced.len()` at slice start, for the zero-progress watchdog.
    before: usize,
    /// Whether this slice advanced the member's prefill — progress the
    /// watchdog must credit even though no token was produced.
    prefilled: bool,
    /// Injected stall: sit out every round this slice, then take a
    /// watchdog tick — exactly like the unbatched stall site.
    stalled: bool,
    end: MemberEnd,
}

/// Where a batch member stands as the slice settles.
enum MemberEnd {
    /// Still decoding: requeue for the next slice.
    Live,
    /// Finished; payload for the client.
    Done(SessionResult),
    /// Cancelled with a structured error.
    Failed(ServeError),
}

/// Advances a whole batch of sessions together for one slice.
///
/// Fault semantics mirror the single-session path *per member*: decoder
/// resolution and each member's prefill chunk run under per-session panic
/// guards, so a poisoned session is cancelled alone while its batch-mates
/// proceed; deadlines are checked before each prefill chunk and swept
/// between decode rounds; members that end the slice with zero progress
/// (neither a token nor a prefill chunk) take a watchdog tick. Members
/// still mid-prefill after their chunk sit out the decode rounds — their
/// prompts load across slices while batch-mates keep decoding. The one
/// batch-wide hazard is a panic inside the joint batched step — it cannot
/// be attributed to a single session and may leave batch-mates mid-token,
/// so every session that was stepping is cancelled with a structured
/// `WorkerPanic`.
fn run_batch_slice(inner: &Inner, batch: Vec<Task>) {
    // Phase 1: resolve every member's decoder under its own guard.
    let mut members: Vec<BatchMember> = Vec::with_capacity(batch.len());
    for mut task in batch {
        let resolved = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let pair = take_decoder(inner, &mut task)?;
            #[cfg(feature = "fault-inject")]
            if crate::faults::should_fire(crate::faults::Site::WorkerPanic, &task.tag) {
                panic!("injected worker panic");
            }
            Ok(pair)
        }));
        match resolved {
            Err(payload) => {
                inner.metrics.on_worker_panic();
                let detail = panic_detail(payload.as_ref());
                finish(inner, task, Err(ServeError::WorkerPanic { detail }));
            }
            Ok(Err(e)) => fail_finish(inner, task, e),
            Ok(Ok((decoder, deadline))) => {
                #[cfg(feature = "fault-inject")]
                let stalled =
                    crate::faults::should_fire(crate::faults::Site::SessionStall, &task.tag);
                #[cfg(not(feature = "fault-inject"))]
                let stalled = false;
                let before = task.produced.len();
                members.push(BatchMember {
                    task,
                    decoder,
                    deadline,
                    before,
                    prefilled: false,
                    stalled,
                    end: MemberEnd::Live,
                });
            }
        }
    }

    // Phase 1.5: members mid-prefill advance by one bounded chunk each,
    // under their own guard and behind their own deadline check. A member
    // still prefilling afterwards sits out the decode rounds below; its
    // batch-mates decode while its prompt loads across slices.
    for m in &mut members {
        if !matches!(m.end, MemberEnd::Live) || m.stalled || !m.decoder.is_prefilling() {
            continue;
        }
        if past(m.deadline) {
            m.end = MemberEnd::Failed(deadline_error(m.task.admitted));
            continue;
        }
        let advanced = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_prefill_chunk(inner, m.decoder.target_mut())
        }));
        match advanced {
            Err(payload) => {
                inner.metrics.on_worker_panic();
                let detail = panic_detail(payload.as_ref());
                m.end = MemberEnd::Failed(ServeError::WorkerPanic { detail });
            }
            Ok(Err(e)) => m.end = MemberEnd::Failed(e),
            Ok(Ok(())) => m.prefilled = true,
        }
    }

    // Phase 2: decode rounds. All live, non-stalled, fully prefilled
    // *plain* members advance together through one batched step per
    // round; *speculative* members advance one token each under their own
    // guard (a speculative round is per-session work, so its panics and
    // errors are attributable — no batch-wide hazard). A member whose
    // step defers a window slide turns `is_prefilling` on and drops out
    // of later rounds — its replay is chunked on subsequent slices like
    // any other prefill.
    for _ in 0..inner.cfg.slice_tokens {
        // Deadline sweep, mirroring the single-session between-step check.
        for m in &mut members {
            if matches!(m.end, MemberEnd::Live) && past(m.deadline) {
                m.end = MemberEnd::Failed(deadline_error(m.task.admitted));
            }
        }
        let mut spec_ran = false;
        for m in &mut members {
            if !matches!(m.end, MemberEnd::Live) || m.stalled || m.decoder.is_prefilling() {
                continue;
            }
            let SessionDecoder::Spec(spec) = &mut m.decoder else {
                continue;
            };
            spec_ran = true;
            let step = std::panic::catch_unwind(AssertUnwindSafe(|| spec.step()));
            match step {
                Err(payload) => {
                    inner.metrics.on_worker_panic();
                    let detail = panic_detail(payload.as_ref());
                    m.end = MemberEnd::Failed(ServeError::WorkerPanic { detail });
                }
                Ok(Err(e)) => m.end = MemberEnd::Failed(e.into()),
                Ok(Ok(Some(t))) => m.task.produced.push(t),
                Ok(Ok(None)) => m.end = MemberEnd::Done(session_result(&mut m.task, &m.decoder)),
            }
        }
        let mut stepped: Vec<usize> = Vec::new();
        let mut steppers: Vec<&mut StepDecoder> = Vec::new();
        for (i, m) in members.iter_mut().enumerate() {
            if matches!(m.end, MemberEnd::Live) && !m.stalled && !m.decoder.is_prefilling() {
                if let SessionDecoder::Plain(d) = &mut m.decoder {
                    stepped.push(i);
                    steppers.push(d);
                }
            }
        }
        if steppers.is_empty() {
            if !spec_ran {
                break;
            }
            continue;
        }
        let round =
            std::panic::catch_unwind(AssertUnwindSafe(|| StepDecoder::step_batch(&mut steppers)));
        drop(steppers);
        match round {
            Err(payload) => {
                inner.metrics.on_worker_panic();
                let detail = panic_detail(payload.as_ref());
                for &i in &stepped {
                    members[i].end = MemberEnd::Failed(ServeError::WorkerPanic {
                        detail: detail.clone(),
                    });
                }
                break;
            }
            Ok(Err(e)) => {
                // A structured error from the joint step is also
                // unattributable: a member may hold a committed but
                // unadvanced token. Cancel everyone who was stepping.
                let detail = format!("batched decode step failed: {e}");
                for &i in &stepped {
                    members[i].end = MemberEnd::Failed(ServeError::Internal {
                        detail: detail.clone(),
                    });
                }
                break;
            }
            Ok(Ok(tokens)) => {
                for (&i, token) in stepped.iter().zip(tokens) {
                    let m = &mut members[i];
                    match token {
                        Some(t) => m.task.produced.push(t),
                        None => m.end = MemberEnd::Done(session_result(&mut m.task, &m.decoder)),
                    }
                }
            }
        }
    }

    // Watchdog accounting for members still live with zero progress this
    // slice (injected stalls always; a cooperative decoder possibly).
    // Prefill chunks count as progress: a long prompt loading across many
    // slices is working, not stalled.
    for m in &mut members {
        if !matches!(m.end, MemberEnd::Live) {
            continue;
        }
        if m.task.produced.len() == m.before && !m.prefilled {
            if let Err(e) = watchdog_tick(inner, &mut m.task) {
                m.end = MemberEnd::Failed(e);
            }
        } else {
            m.task.stalled_slices = 0;
        }
    }

    // Speculation accounting: drain every member's per-slice counters
    // (including failed members — their fallbacks already happened).
    for m in &mut members {
        flush_spec_stats(inner, &mut m.decoder);
    }

    // Settle: requeue survivors in their original order, deliver the rest.
    for m in members {
        let BatchMember {
            mut task,
            decoder,
            deadline,
            end,
            ..
        } = m;
        match end {
            MemberEnd::Live => {
                task.state = if decoder.is_prefilling() {
                    TaskState::Prefilling { decoder, deadline }
                } else {
                    TaskState::Running { decoder, deadline }
                };
                lock_queue(inner).push_back(task);
                inner.available.notify_one();
            }
            MemberEnd::Done(result) => {
                inner
                    .metrics
                    .on_completed(result.tokens.len(), result.total_us);
                finish(inner, task, Ok(result));
            }
            MemberEnd::Failed(e) => fail_finish(inner, task, e),
        }
    }
}

/// What one guarded decode slice did with its session.
enum SliceStatus {
    /// Session still alive; requeue it.
    Continue,
    /// Session finished with this payload.
    Done(SessionResult),
}

/// Takes a task's decoder for one slice. For `Pending` it records the
/// queue wait, checks the deadline *before doing any prefill work* (a
/// session that expired in the queue costs nothing), builds an
/// un-prefilled chunked decoder, and probes the shared-prefix cache —
/// on a hit the session adopts a forked KV cache and skips that much
/// prefill. `Prefilling` and `Running` pass through; `Tombstone` is a
/// structured error. Shared by the single-session and batched slice
/// paths.
fn take_decoder(
    inner: &Inner,
    task: &mut Task,
) -> Result<(SessionDecoder, Option<Instant>), ServeError> {
    match std::mem::replace(&mut task.state, TaskState::Tombstone) {
        TaskState::Pending(req) => {
            let queue_us = elapsed_us(task.admitted);
            task.queue_us = Some(queue_us);
            inner.metrics.on_first_slice(queue_us);
            if past(req.deadline) {
                return Err(deadline_error(task.admitted));
            }
            let mut decoder = match &req.pool {
                Some(pool) => {
                    StepDecoder::new_chunked_pooled(&req.model, &req.prompt, &req.cfg, pool)?
                }
                None => StepDecoder::new_chunked(&req.model, &req.prompt, &req.cfg)?,
            };
            // Probe the dtype bucket the session will decode at: a
            // `#kv8` session must never adopt an f32 snapshot (or the
            // reverse) even though both resolve to one model allocation.
            let dtype = req.pool.as_ref().map_or(KvDtype::F32, |p| p.dtype());
            if let Some((fork, _)) =
                inner
                    .prefix
                    .lookup(&req.model, dtype, decoder.pending_prefill())
            {
                // Adoption re-validates tokens and model identity; a
                // mismatch simply falls back to a cold prefill.
                if let Ok(adopted) = decoder.adopt_prefix(fork) {
                    inner.metrics.on_prefix_hit(adopted);
                }
            }
            let decoder = match &req.draft {
                Some(draft) if inner.cfg.spec_draft => {
                    #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
                    let mut spec = SpecDecoder::new(decoder, &draft.model, draft.k)?;
                    #[cfg(feature = "fault-inject")]
                    {
                        let tag = task.tag.clone();
                        spec.set_draft_probe(Box::new(move || {
                            if crate::faults::should_fire(crate::faults::Site::SpecDraft, &tag) {
                                panic!("injected draft panic");
                            }
                        }));
                    }
                    SessionDecoder::Spec(spec)
                }
                _ => SessionDecoder::Plain(decoder),
            };
            Ok((decoder, req.deadline))
        }
        TaskState::Prefilling { decoder, deadline } | TaskState::Running { decoder, deadline } => {
            Ok((decoder, deadline))
        }
        TaskState::Tombstone => Err(ServeError::Internal {
            detail: "scheduler invariant violated: task rescheduled in tombstone state".to_string(),
        }),
    }
}

/// Advances a mid-prefill decoder by one bounded chunk, recording chunk
/// count and compute time. On the chunk that completes a session's
/// *initial* prefill (nothing emitted yet), the freshly filled prompt
/// window is donated to the shared-prefix cache for future sessions.
fn run_prefill_chunk(inner: &Inner, decoder: &mut StepDecoder) -> Result<(), ServeError> {
    let t0 = Instant::now();
    decoder.prefill_pending(inner.cfg.prefill_chunk)?;
    inner.metrics.on_prefill_chunk(elapsed_us(t0));
    if !decoder.is_prefilling() && decoder.emitted() == 0 {
        inner.prefix.insert(decoder.cache());
    }
    Ok(())
}

/// Drains a speculative session's per-slice counters into the metrics
/// core. A no-op for plain sessions. Called once per slice (and once more
/// at completion), so snapshot readers see acceptance counts grow while a
/// session is still streaming.
fn flush_spec_stats(inner: &Inner, decoder: &mut SessionDecoder) {
    if let SessionDecoder::Spec(s) = decoder {
        let stats = s.take_stats();
        if stats.proposed > 0 || stats.accepted > 0 {
            inner.metrics.on_spec_round(stats.proposed, stats.accepted);
        }
        if stats.fallbacks > 0 {
            inner.metrics.on_spec_fallback(stats.fallbacks);
        }
    }
}

/// Builds the payload for a session whose decoder just reported completion.
fn session_result(task: &mut Task, decoder: &SessionDecoder) -> SessionResult {
    let finish = if decoder.target().stopped_at_eos() {
        FinishReason::Eos
    } else {
        FinishReason::Length
    };
    SessionResult {
        tokens: std::mem::take(&mut task.produced),
        finish,
        queue_us: task.queue_us.unwrap_or(0),
        total_us: elapsed_us(task.admitted),
    }
}

/// Advances one session for one slice: at most one bounded prefill chunk,
/// then (once the prompt window is cached) up to `slice_tokens` decode
/// steps. Pure with respect to scheduler structures: no locks are held
/// while decoding, so a panic here cannot poison the queue.
fn decode_slice(inner: &Inner, task: &mut Task) -> Result<SliceStatus, ServeError> {
    let (mut decoder, deadline) = take_decoder(inner, task)?;

    #[cfg(feature = "fault-inject")]
    {
        if crate::faults::should_fire(crate::faults::Site::WorkerPanic, &task.tag) {
            panic!("injected worker panic");
        }
        if crate::faults::should_fire(crate::faults::Site::SessionStall, &task.tag) {
            // Simulate a slice that makes no token progress: hand the
            // decoder back untouched and let the watchdog account for it.
            task.state = TaskState::Running { decoder, deadline };
            return watchdog_tick(inner, task);
        }
    }

    if decoder.is_prefilling() {
        // Deadline check before spending any prefill compute, so a
        // session that expired while queued (or mid-prefill) is cancelled
        // without paying for another chunk.
        if past(deadline) {
            return Err(deadline_error(task.admitted));
        }
        run_prefill_chunk(inner, decoder.target_mut())?;
        if decoder.is_prefilling() {
            // More prompt to go: rotate so queued sessions get decode
            // time between this session's chunks. Prefill progress counts
            // as progress for the stall watchdog.
            task.state = TaskState::Prefilling { decoder, deadline };
            task.stalled_slices = 0;
            return Ok(SliceStatus::Continue);
        }
    }

    let before = task.produced.len();
    for _ in 0..inner.cfg.slice_tokens {
        if past(deadline) {
            return Err(deadline_error(task.admitted));
        }
        match decoder.step()? {
            Some(token) => {
                task.produced.push(token);
                if decoder.is_prefilling() {
                    // The step landed on a context-window boundary and
                    // deferred its slide: replay the window in bounded
                    // chunks on later slices instead of inline.
                    break;
                }
            }
            None => {
                flush_spec_stats(inner, &mut decoder);
                return Ok(SliceStatus::Done(session_result(task, &decoder)));
            }
        }
    }

    flush_spec_stats(inner, &mut decoder);
    task.state = if decoder.is_prefilling() {
        TaskState::Prefilling { decoder, deadline }
    } else {
        TaskState::Running { decoder, deadline }
    };
    if task.produced.len() == before {
        // A full slice with zero tokens produced. Impossible for today's
        // StepDecoder (every step yields or finishes) but load-bearing for
        // injected stalls and future cooperative decoders.
        return watchdog_tick(inner, task);
    }
    task.stalled_slices = 0;
    Ok(SliceStatus::Continue)
}

/// Accounts one zero-progress slice against the session's stall budget.
fn watchdog_tick(inner: &Inner, task: &mut Task) -> Result<SliceStatus, ServeError> {
    task.stalled_slices += 1;
    let limit = inner.cfg.stall_slices;
    if limit > 0 && task.stalled_slices >= limit {
        return Err(ServeError::Stalled {
            slices: task.stalled_slices,
        });
    }
    Ok(SliceStatus::Continue)
}

/// Sends the outcome and releases the admission slot exactly once.
fn finish(inner: &Inner, mut task: Task, outcome: SessionOutcome) {
    task.finished = true;
    // The receiver may have given up (client gone); that's not an error.
    let _ = task.reply.send(outcome);
    inner.active.fetch_sub(1, Ordering::SeqCst);
}

/// Renders a caught panic payload for the structured error (panics carry
/// `&str` or `String` in practice; anything else gets a placeholder).
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Installs (once) a panic hook that suppresses the default stderr
/// backtrace for panics on scheduler worker threads — chaos tests inject
/// panics on purpose, and the structured error is the real signal.
#[cfg(feature = "fault-inject")]
fn quiet_worker_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("chipalign-serve-worker-"));
            if !on_worker {
                previous(info);
            }
        }));
    });
}

fn past(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn deadline_error(admitted: Instant) -> ServeError {
    ServeError::DeadlineExceeded {
        waited_ms: elapsed_us(admitted) / 1_000,
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;
    use std::time::Duration;

    fn model() -> Arc<TinyLm> {
        let mut arch = ArchSpec::tiny("sched");
        arch.vocab_size = 99;
        Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(11)).expect("model"))
    }

    fn greedy(max_new_tokens: usize) -> GenerateConfig {
        GenerateConfig {
            max_new_tokens,
            stop_at_eos: false,
            ..GenerateConfig::default()
        }
    }

    fn request(model: &Arc<TinyLm>, budget: usize, deadline: Option<Instant>) -> SessionRequest {
        SessionRequest {
            model: Arc::clone(model),
            prompt: vec![5, 6, 7],
            cfg: greedy(budget),
            deadline,
            tag: "test".to_string(),
            pool: None,
            draft: None,
        }
    }

    /// Unbatched config: keeps the pre-batching tests pinned to the exact
    /// single-session slice path.
    fn config(workers: usize, max_sessions: usize, slice_tokens: usize) -> SchedulerConfig {
        SchedulerConfig {
            workers,
            max_sessions,
            slice_tokens,
            stall_slices: 32,
            max_batch: 1,
            prefill_chunk: 32,
            prefix_cache: PrefixCacheConfig::default(),
            spec_draft: true,
        }
    }

    fn batched(workers: usize, slice_tokens: usize, max_batch: usize) -> SchedulerConfig {
        SchedulerConfig {
            max_batch,
            ..config(workers, 16, slice_tokens)
        }
    }

    #[test]
    fn sessions_complete_and_match_generate() {
        let m = model();
        let scheduler = Scheduler::start(config(2, 8, 4), Arc::new(Metrics::new()));
        let rx = scheduler.submit(request(&m, 24, None)).expect("admit");
        let result = rx.recv().expect("outcome").expect("ok");
        assert_eq!(result.tokens.len(), 24);
        assert_eq!(result.finish, FinishReason::Length);
        let reference = chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(24)).expect("ok");
        assert_eq!(result.tokens, reference, "scheduled == single-threaded");
        scheduler.join();
    }

    #[test]
    fn many_interleaved_sessions_each_match_generate() {
        let m = model();
        let scheduler = Scheduler::start(config(2, 16, 2), Arc::new(Metrics::new()));
        // Mixed lengths force interleaving across slices.
        let budgets = [3usize, 17, 9, 40, 1, 25];
        let receivers: Vec<_> = budgets
            .iter()
            .map(|&b| scheduler.submit(request(&m, b, None)).expect("admit"))
            .collect();
        for (rx, &budget) in receivers.into_iter().zip(&budgets) {
            let result = rx.recv().expect("outcome").expect("ok");
            let reference =
                chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(budget)).expect("ok");
            assert_eq!(result.tokens, reference, "budget {budget}");
        }
        assert_eq!(scheduler.active(), 0);
        scheduler.join();
    }

    #[test]
    fn batched_sessions_complete_and_match_generate() {
        let m = model();
        let metrics = Arc::new(Metrics::new());
        // One worker + narrow slices force real batches: after the first
        // requeue the queue always holds several runnable sessions.
        let scheduler = Scheduler::start(batched(1, 2, 4), Arc::clone(&metrics));
        let budgets = [3usize, 17, 9, 40, 1, 25];
        let receivers: Vec<_> = budgets
            .iter()
            .map(|&b| scheduler.submit(request(&m, b, None)).expect("admit"))
            .collect();
        for (rx, &budget) in receivers.into_iter().zip(&budgets) {
            let result = rx.recv().expect("outcome").expect("ok");
            let reference =
                chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(budget)).expect("ok");
            assert_eq!(result.tokens, reference, "budget {budget}");
        }
        let snap = metrics.snapshot();
        assert!(
            snap.batched_slices > 0,
            "six queued sessions on one worker must have shared a slice"
        );
        assert_eq!(
            snap.batch_occupancy.iter().sum::<u64>(),
            snap.batch_occupancy[1] + snap.batched_slices,
            "every dequeued slice is either single-session or batched"
        );
        assert_eq!(scheduler.active(), 0);
        scheduler.join();
    }

    #[test]
    fn max_batch_is_clamped_to_the_skinny_gemm_tile() {
        let scheduler = Scheduler::start(
            SchedulerConfig {
                max_batch: 10_000,
                ..SchedulerConfig::default()
            },
            Arc::new(Metrics::new()),
        );
        assert_eq!(
            scheduler.inner.cfg.max_batch,
            chipalign_tensor::tune::GEMM_SKINNY_M_MAX
        );
        scheduler.join();
    }

    #[test]
    fn admission_bound_rejects_fast() {
        let m = model();
        let scheduler = Scheduler::start(config(1, 2, 1), Arc::new(Metrics::new()));
        // Two slow sessions occupy both slots; deadlines keep the test
        // finite even on a loaded machine.
        let deadline = Some(Instant::now() + Duration::from_millis(400));
        let rx1 = scheduler
            .submit(request(&m, 1_000_000, deadline))
            .expect("one");
        let rx2 = scheduler
            .submit(request(&m, 1_000_000, deadline))
            .expect("two");
        let third = scheduler.submit(request(&m, 4, None));
        assert!(
            matches!(third, Err(ServeError::Overloaded { capacity: 2, .. })),
            "third submission must be rejected, got {third:?}"
        );
        // Both occupants eventually leave (deadline or completion).
        assert!(rx1.recv().is_ok());
        assert!(rx2.recv().is_ok());
        assert_eq!(scheduler.active(), 0);
        scheduler.join();
    }

    #[test]
    fn deadline_is_reported_as_such() {
        let m = model();
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(config(1, 4, 1), Arc::clone(&metrics));
        let deadline = Some(Instant::now() + Duration::from_millis(50));
        let rx = scheduler
            .submit(request(&m, 10_000_000, deadline))
            .expect("admit");
        let outcome = rx.recv().expect("outcome");
        assert!(
            matches!(outcome, Err(ServeError::DeadlineExceeded { .. })),
            "got {outcome:?}"
        );
        assert_eq!(metrics.snapshot().deadline_exceeded, 1);
        scheduler.join();
    }

    #[test]
    fn expired_deadline_is_rejected_at_dequeue_before_any_prefill() {
        let m = model();
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(config(1, 4, 4), Arc::clone(&metrics));
        // Already-expired deadline: the session must be failed when it is
        // dequeued, without paying for a single prefill chunk (the PR 5
        // queued-deadline leak had it prefilling the whole prompt first).
        let rx = scheduler
            .submit(request(&m, 24, Some(Instant::now())))
            .expect("admit");
        let outcome = rx.recv().expect("outcome");
        assert!(
            matches!(outcome, Err(ServeError::DeadlineExceeded { .. })),
            "got {outcome:?}"
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.deadline_exceeded, 1);
        assert_eq!(
            snap.prefill_chunks, 0,
            "no prefill work may be spent on a dead-on-arrival session"
        );
        scheduler.join();
    }

    #[test]
    fn chunked_prefill_lets_short_sessions_overtake_a_long_prompt() {
        let m = model();
        let metrics = Arc::new(Metrics::new());
        // One worker, tiny prefill chunks: without chunking, the long
        // prompt's prefill would hold the only worker until it finished
        // and the short session (submitted second) would wait behind it.
        let mut cfg = config(1, 4, 4);
        cfg.prefill_chunk = 2;
        let scheduler = Scheduler::start(cfg, Arc::clone(&metrics));
        let long_prompt: Vec<u32> = (0..40u32).map(|i| 3 + (i * 7) % 90).collect();
        // A large budget keeps the long session busy (decode plus deferred
        // window slides, each replayed in 2-token chunks) long after the
        // short one completes, so the ordering assertion below has a
        // margin of thousands of scheduler slices, not a photo finish.
        let long_rx = scheduler
            .submit(SessionRequest {
                model: Arc::clone(&m),
                prompt: long_prompt.clone(),
                cfg: greedy(1000),
                deadline: None,
                tag: "long".to_string(),
                pool: None,
                draft: None,
            })
            .expect("admit long");
        let short_rx = scheduler.submit(request(&m, 4, None)).expect("admit short");
        let short = short_rx.recv().expect("outcome").expect("ok");
        assert!(
            matches!(
                long_rx.try_recv(),
                Err(std::sync::mpsc::TryRecvError::Empty)
            ),
            "short session must complete while the long prompt is still in flight"
        );
        let short_ref = chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(4)).expect("ok");
        assert_eq!(short.tokens, short_ref, "short transcript unchanged");
        let long = long_rx.recv().expect("outcome").expect("ok");
        let long_ref =
            chipalign_nn::generate::generate(&m, &long_prompt, &greedy(1000)).expect("ok");
        assert_eq!(long.tokens, long_ref, "chunked prefill is bit-identical");
        assert!(
            metrics.snapshot().prefill_chunks >= 2,
            "the long prompt must have prefilled across multiple chunks"
        );
        scheduler.join();
    }

    #[test]
    fn repeated_prompt_hits_the_prefix_cache_with_identical_transcript() {
        let m = model();
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(config(1, 4, 4), Arc::clone(&metrics));
        let first = scheduler
            .submit(request(&m, 12, None))
            .expect("admit")
            .recv()
            .expect("outcome")
            .expect("ok");
        let second = scheduler
            .submit(request(&m, 12, None))
            .expect("admit")
            .recv()
            .expect("outcome")
            .expect("ok");
        let reference = chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(12)).expect("ok");
        assert_eq!(first.tokens, reference, "cold session matches generate()");
        assert_eq!(
            second.tokens, reference,
            "prefix-hit session is bit-identical"
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.prefix_hits, 1, "second session must reuse the prefix");
        assert_eq!(
            snap.prefix_tokens_reused, 2,
            "a 3-token prompt donates its longest proper prefix (2 tokens)"
        );
        scheduler.join();
    }

    #[test]
    fn pooled_and_contiguous_sessions_mix_with_identical_transcripts() {
        use chipalign_nn::{KvPool, KvPoolConfig};
        let m = model();
        let pool = KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks: 256,
            ..KvPoolConfig::default()
        })
        .expect("pool");
        let metrics = Arc::new(Metrics::new());
        // One worker + narrow slices force batched slices whose members
        // mix paged and contiguous KV storage freely.
        let scheduler = Scheduler::start(batched(1, 2, 4), Arc::clone(&metrics));
        let budgets = [3usize, 17, 9, 40, 1, 25];
        let receivers: Vec<_> = budgets
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let pool = (i % 2 == 0).then(|| Arc::clone(&pool));
                scheduler
                    .submit(SessionRequest {
                        pool,
                        ..request(&m, b, None)
                    })
                    .expect("admit")
            })
            .collect();
        for (rx, &budget) in receivers.into_iter().zip(&budgets) {
            let result = rx.recv().expect("outcome").expect("ok");
            let reference =
                chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(budget)).expect("ok");
            assert_eq!(
                result.tokens, reference,
                "budget {budget} must be bit-identical"
            );
        }
        assert_eq!(scheduler.active(), 0);
        scheduler.join();
    }

    #[test]
    fn pool_saturation_evicts_prefix_snapshots_then_rejects_as_overloaded() {
        use chipalign_nn::{KvPool, KvPoolConfig};
        let m = model();
        let pool = KvPool::new(KvPoolConfig {
            block_tokens: 1,
            max_blocks: 4,
            ..KvPoolConfig::default()
        })
        .expect("pool");
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(config(1, 8, 4), Arc::clone(&metrics));
        let pooled = |prompt: Vec<u32>| SessionRequest {
            prompt,
            ..SessionRequest {
                pool: Some(Arc::clone(&pool)),
                ..request(&m, 1, None)
            }
        };

        // Session 1 completes and donates its prefilled 3-token prompt
        // window, whose blocks stay aliased by the prefix cache after the
        // session dies (the decoder is dropped before the outcome is sent,
        // so the count below is deterministic).
        let first = scheduler.submit(pooled(vec![5, 6, 7])).expect("admit");
        first.recv().expect("outcome").expect("ok");
        assert_eq!(
            pool.blocks_in_use(),
            3,
            "only the donated prefix snapshot holds blocks"
        );

        // Session 2 needs all 4 blocks: admission must reclaim them by
        // evicting the cached snapshot rather than rejecting.
        let second = scheduler
            .submit(pooled(vec![9, 10, 11, 12]))
            .expect("admitted after eviction");
        let result = second.recv().expect("outcome").expect("ok");
        let reference =
            chipalign_nn::generate::generate(&m, &[9, 10, 11, 12], &greedy(1)).expect("ok");
        assert_eq!(result.tokens, reference);
        assert_eq!(metrics.snapshot().pool_evictions, 1);

        // A prompt window no amount of eviction can cover is rejected with
        // the overloaded wire class, so clients back off and retry.
        let big: Vec<u32> = (0..9u32).map(|i| 5 + i).collect();
        let third = scheduler.submit(pooled(big));
        match third {
            Err(e @ ServeError::PoolSaturated { needed: 9, .. }) => {
                assert_eq!(e.code(), crate::protocol::ErrorCode::Overloaded);
            }
            other => panic!("expected pool saturation, got {other:?}"),
        }
        assert!(metrics.snapshot().rejected_overload >= 1);
        assert_eq!(scheduler.active(), 0);
        scheduler.join();
    }

    #[test]
    fn shutdown_drains_in_flight_sessions_and_rejects_new_ones() {
        let m = model();
        let scheduler = Scheduler::start(config(2, 8, 2), Arc::new(Metrics::new()));
        let receivers: Vec<_> = (0..4)
            .map(|_| scheduler.submit(request(&m, 30, None)).expect("admit"))
            .collect();
        scheduler.shutdown();
        assert!(matches!(
            scheduler.submit(request(&m, 4, None)),
            Err(ServeError::ShuttingDown)
        ));
        // join() returns only after the queue is drained — so every
        // receiver must already hold a completed generation.
        scheduler.join();
        for rx in receivers {
            let result = rx
                .try_recv()
                .expect("drained before join returned")
                .expect("ok");
            assert_eq!(result.tokens.len(), 30);
        }
    }

    #[test]
    fn drain_initiated_mid_chunked_prefill_still_answers_every_session() {
        // Pins the "graceful drains always answer every admitted session"
        // contract (server.rs) in its hardest corner: the drain begins
        // while prompts are still mid-chunked-prefill, i.e. before the
        // affected sessions have produced a single token. One worker and a
        // 2-token prefill chunk guarantee that when shutdown() runs, at
        // most one chunk of the first long prompt has been processed and
        // every other session is queued in the Pending/Prefilling states.
        let m = model();
        let metrics = Arc::new(Metrics::new());
        let mut cfg = config(1, 16, 2);
        cfg.prefill_chunk = 2;
        let scheduler = Scheduler::start(cfg, Arc::clone(&metrics));
        let long_prompt: Vec<u32> = (0..30u32).map(|i| 3 + (i * 7) % 90).collect();
        let sessions: Vec<(Vec<u32>, usize)> = vec![
            (long_prompt.clone(), 12),
            (vec![5, 6, 7], 4),
            (long_prompt.clone(), 7),
            (vec![8, 9], 9),
        ];
        let receivers: Vec<_> = sessions
            .iter()
            .map(|(prompt, budget)| {
                scheduler
                    .submit(SessionRequest {
                        model: Arc::clone(&m),
                        prompt: prompt.clone(),
                        cfg: greedy(*budget),
                        deadline: None,
                        tag: "drain-mid-prefill".to_string(),
                        pool: None,
                        draft: None,
                    })
                    .expect("admit")
            })
            .collect();
        // Initiate the drain immediately: the 30-token prompts need 15
        // chunks each, so they are necessarily mid-prefill (or still
        // queued) at this point.
        scheduler.shutdown();
        assert!(matches!(
            scheduler.submit(request(&m, 4, None)),
            Err(ServeError::ShuttingDown)
        ));
        scheduler.join();
        for (rx, (prompt, budget)) in receivers.into_iter().zip(&sessions) {
            let result = rx
                .try_recv()
                .expect("answered before join returned")
                .expect("drained sessions complete normally");
            let reference =
                chipalign_nn::generate::generate(&m, prompt, &greedy(*budget)).expect("reference");
            assert_eq!(
                result.tokens, reference,
                "a drained session's transcript must match an undrained run"
            );
        }
        assert_eq!(scheduler.active(), 0);
        assert_eq!(
            metrics.snapshot().completed,
            sessions.len() as u64,
            "every admitted session completed despite the mid-prefill drain"
        );
    }

    #[test]
    fn abort_answers_every_admitted_session_with_a_structured_error() {
        // The hard-stop path: queued sessions must get ShuttingDown (a
        // retryable verdict the router fails over on), never silence.
        let m = model();
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(config(1, 16, 2), Arc::clone(&metrics));
        let receivers: Vec<_> = (0..6)
            .map(|_| {
                scheduler
                    .submit(request(&m, 10_000_000, None))
                    .expect("admit")
            })
            .collect();
        scheduler.abort();
        assert!(matches!(
            scheduler.submit(request(&m, 4, None)),
            Err(ServeError::ShuttingDown)
        ));
        scheduler.join();
        for rx in receivers {
            let outcome = rx.try_recv().expect("answered before join returned");
            assert!(
                matches!(outcome, Err(ServeError::ShuttingDown)),
                "aborted sessions get the retryable shutdown verdict, got {outcome:?}"
            );
        }
        assert_eq!(scheduler.active(), 0, "abort must release every slot");
    }

    fn drafted(
        model: &Arc<TinyLm>,
        draft: &Arc<TinyLm>,
        k: usize,
        budget: usize,
    ) -> SessionRequest {
        SessionRequest {
            draft: Some(SpecDraft {
                model: Arc::clone(draft),
                k,
            }),
            ..request(model, budget, None)
        }
    }

    #[test]
    fn speculative_sessions_match_generate_and_count_acceptance() {
        let m = model();
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(config(2, 8, 4), Arc::clone(&metrics));
        // A draft that *is* the target agrees on every proposal, so
        // acceptance must be total — and the transcript byte-identical.
        let rx = scheduler.submit(drafted(&m, &m, 4, 24)).expect("admit");
        let result = rx.recv().expect("outcome").expect("ok");
        let reference = chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(24)).expect("ok");
        assert_eq!(result.tokens, reference, "speculative == plain bytes");
        let snap = metrics.snapshot();
        assert!(snap.draft_tokens_proposed > 0, "speculation must have run");
        assert_eq!(
            snap.accepted_draft_tokens, snap.draft_tokens_proposed,
            "an identical draft is always accepted"
        );
        assert_eq!(snap.spec_fallbacks, 0);
        scheduler.join();
    }

    #[test]
    fn spec_draft_kill_switch_ignores_the_pairing() {
        let m = model();
        let metrics = Arc::new(Metrics::new());
        let mut cfg = config(1, 4, 4);
        cfg.spec_draft = false;
        let scheduler = Scheduler::start(cfg, Arc::clone(&metrics));
        let rx = scheduler.submit(drafted(&m, &m, 4, 16)).expect("admit");
        let result = rx.recv().expect("outcome").expect("ok");
        let reference = chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(16)).expect("ok");
        assert_eq!(result.tokens, reference);
        let snap = metrics.snapshot();
        assert_eq!(
            snap.draft_tokens_proposed, 0,
            "the kill switch must prevent any speculation"
        );
        assert_eq!(snap.accepted_draft_tokens, 0);
        scheduler.join();
    }

    #[test]
    fn batched_slices_mix_speculative_and_plain_members() {
        let m = model();
        let metrics = Arc::new(Metrics::new());
        // One worker + narrow slices force batches whose members mix
        // speculative and plain decoders; each must match generate().
        let scheduler = Scheduler::start(batched(1, 2, 4), Arc::clone(&metrics));
        let budgets = [3usize, 17, 9, 40, 1, 25];
        let receivers: Vec<_> = budgets
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let req = if i % 2 == 0 {
                    drafted(&m, &m, 3, b)
                } else {
                    request(&m, b, None)
                };
                scheduler.submit(req).expect("admit")
            })
            .collect();
        for (rx, &budget) in receivers.into_iter().zip(&budgets) {
            let result = rx.recv().expect("outcome").expect("ok");
            let reference =
                chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(budget)).expect("ok");
            assert_eq!(result.tokens, reference, "budget {budget}");
        }
        let snap = metrics.snapshot();
        // Budget 40 slides the context window; after a slide the draft
        // resyncs on a shorter window and may legitimately disagree, so
        // acceptance is positive but not necessarily total.
        assert!(snap.draft_tokens_proposed > 0);
        assert!(snap.accepted_draft_tokens > 0);
        assert!(snap.accepted_draft_tokens <= snap.draft_tokens_proposed);
        assert_eq!(scheduler.active(), 0);
        scheduler.join();
    }

    #[cfg(feature = "fault-inject")]
    mod injected {
        use super::*;
        use crate::faults::{self, Site, Trigger};

        fn tagged(model: &Arc<TinyLm>, budget: usize, tag: &str) -> SessionRequest {
            SessionRequest {
                tag: tag.to_string(),
                ..request(model, budget, None)
            }
        }

        #[test]
        fn slice_panic_cancels_only_the_poisoned_session() {
            let _scope = faults::scope(21);
            faults::arm(Site::WorkerPanic, Some("poison"), Trigger::Once(1));
            let m = model();
            let metrics = Arc::new(Metrics::new());
            let scheduler = Scheduler::start(config(2, 8, 4), Arc::clone(&metrics));
            let poisoned = scheduler.submit(tagged(&m, 24, "poison")).expect("admit");
            let healthy = scheduler.submit(tagged(&m, 24, "healthy")).expect("admit");
            let bad = poisoned.recv().expect("outcome");
            assert!(
                matches!(bad, Err(ServeError::WorkerPanic { .. })),
                "got {bad:?}"
            );
            let good = healthy.recv().expect("outcome").expect("ok");
            let reference =
                chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(24)).expect("ok");
            assert_eq!(good.tokens, reference, "healthy session unaffected");
            assert_eq!(metrics.snapshot().worker_panics, 1);
            assert_eq!(scheduler.active(), 0);
            scheduler.join();
        }

        #[test]
        fn watchdog_cancels_a_stalled_session_after_the_slice_budget() {
            let _scope = faults::scope(22);
            faults::arm(Site::SessionStall, Some("stuck"), Trigger::Always);
            let m = model();
            let metrics = Arc::new(Metrics::new());
            let mut cfg = config(1, 4, 4);
            cfg.stall_slices = 3;
            let scheduler = Scheduler::start(cfg, Arc::clone(&metrics));
            let rx = scheduler.submit(tagged(&m, 24, "stuck")).expect("admit");
            let outcome = rx.recv().expect("outcome");
            assert!(
                matches!(outcome, Err(ServeError::Stalled { slices: 3 })),
                "got {outcome:?}"
            );
            assert_eq!(metrics.snapshot().watchdog_cancels, 1);
            scheduler.join();
        }

        #[test]
        fn dead_worker_respawns_and_keeps_serving() {
            let _scope = faults::scope(23);
            faults::arm(Site::WorkerDeath, Some("victim"), Trigger::Once(1));
            let m = model();
            let metrics = Arc::new(Metrics::new());
            let scheduler = Scheduler::start(config(1, 4, 4), Arc::clone(&metrics));
            let doomed = scheduler.submit(tagged(&m, 24, "victim")).expect("admit");
            let outcome = doomed.recv().expect("drop guard must report");
            assert!(
                matches!(outcome, Err(ServeError::Internal { .. })),
                "got {outcome:?}"
            );
            // The single worker died holding the session — the respawned
            // loop must still serve the next one.
            let next = scheduler.submit(tagged(&m, 8, "after")).expect("admit");
            let result = next.recv().expect("outcome").expect("ok");
            assert_eq!(result.tokens.len(), 8);
            assert_eq!(metrics.snapshot().workers_respawned, 1);
            assert_eq!(scheduler.active(), 0);
            scheduler.join();
        }
    }
}

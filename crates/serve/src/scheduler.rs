//! The session scheduler: continuous batching over a worker pool.
//!
//! Every admitted request becomes a *session* owning its own
//! [`chipalign_nn::StepDecoder`] (and therefore its own KV cache). Workers
//! repeatedly pop a session from a shared run queue, decode a short *slice*
//! of tokens, and push the session back if it isn't finished. That
//! round-robin slicing is the continuous-batching property: a 1000-token
//! generation never blocks a 10-token one for more than a slice, new
//! sessions join the rotation the moment a worker frees up, and with `W`
//! workers up to `W` sessions decode truly in parallel.
//!
//! Admission control is a hard bound on sessions in flight (queued +
//! running): beyond it, [`Scheduler::submit`] fails fast with
//! [`ServeError::Overloaded`] instead of buffering without limit. Each
//! session may carry a deadline, checked between decode steps, so a stuck
//! or oversized request cannot pin a worker forever. [`Scheduler::shutdown`]
//! stops admissions; workers then drain every queued session to completion
//! before exiting, which is what makes server shutdown graceful.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use chipalign_nn::generate::{GenerateConfig, StepDecoder};
use chipalign_nn::TinyLm;

use crate::metrics::Metrics;
use crate::protocol::FinishReason;
use crate::ServeError;

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads decoding sessions in parallel.
    pub workers: usize,
    /// Hard bound on sessions in flight (queued + running); submissions
    /// beyond it are rejected with `Overloaded`.
    pub max_sessions: usize,
    /// Tokens decoded per scheduling slice before a session rotates to the
    /// back of the queue. Smaller = fairer, larger = less queue churn.
    pub slice_tokens: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .min(8),
            max_sessions: 64,
            slice_tokens: 8,
        }
    }
}

/// One admitted generation request.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// The model to decode with.
    pub model: Arc<TinyLm>,
    /// Prompt token ids (non-empty).
    pub prompt: Vec<u32>,
    /// Decoding configuration (validated at prefill).
    pub cfg: GenerateConfig,
    /// Absolute deadline; checked between decode steps.
    pub deadline: Option<Instant>,
}

/// A finished session's payload.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The new tokens, in order.
    pub tokens: Vec<u32>,
    /// Why decoding stopped.
    pub finish: FinishReason,
    /// Microseconds between admission and the first decode slice.
    pub queue_us: u64,
    /// Microseconds between admission and completion.
    pub total_us: u64,
}

/// What a worker sends back when a session leaves the system.
pub type SessionOutcome = Result<SessionResult, ServeError>;

enum TaskState {
    /// Prompt not yet prefilled (prefill happens on a worker, not on the
    /// submitting connection thread).
    Pending(SessionRequest),
    /// Mid-generation.
    Running {
        decoder: StepDecoder,
        deadline: Option<Instant>,
    },
}

struct Task {
    state: TaskState,
    produced: Vec<u32>,
    reply: Sender<SessionOutcome>,
    admitted: Instant,
    queue_us: Option<u64>,
}

struct Inner {
    cfg: SchedulerConfig,
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    /// Sessions in flight: queued + currently on a worker.
    active: AtomicUsize,
    draining: AtomicBool,
    metrics: Arc<Metrics>,
}

/// The scheduler: a run queue plus its worker pool.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scheduler({} workers, {} active)",
            self.inner.cfg.workers,
            self.inner.active.load(Ordering::Relaxed)
        )
    }
}

impl Scheduler {
    /// Starts the worker pool.
    #[must_use]
    pub fn start(cfg: SchedulerConfig, metrics: Arc<Metrics>) -> Self {
        let cfg = SchedulerConfig {
            workers: cfg.workers.max(1),
            max_sessions: cfg.max_sessions.max(1),
            slice_tokens: cfg.slice_tokens.max(1),
        };
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            active: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            metrics,
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("chipalign-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Sessions in flight (queued + running).
    #[must_use]
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::SeqCst)
    }

    /// Admits a session, returning the channel its outcome will arrive on.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] once draining has begun and
    /// [`ServeError::Overloaded`] when the in-flight bound is reached; both
    /// fail fast without queueing.
    pub fn submit(&self, req: SessionRequest) -> Result<Receiver<SessionOutcome>, ServeError> {
        let inner = &self.inner;
        inner.metrics.on_request();
        if inner.draining.load(Ordering::SeqCst) {
            inner.metrics.on_rejected_shutdown();
            return Err(ServeError::ShuttingDown);
        }
        // Reserve a slot atomically so concurrent submissions cannot
        // overshoot the bound.
        let capacity = inner.cfg.max_sessions;
        if inner
            .active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < capacity).then_some(n + 1)
            })
            .is_err()
        {
            inner.metrics.on_rejected_overload();
            return Err(ServeError::Overloaded {
                active: inner.active.load(Ordering::SeqCst),
                capacity,
            });
        }
        inner.metrics.on_admitted(req.prompt.len());
        let (tx, rx) = std::sync::mpsc::channel();
        let task = Task {
            state: TaskState::Pending(req),
            produced: Vec::new(),
            reply: tx,
            admitted: Instant::now(),
            queue_us: None,
        };
        inner.queue.lock().expect("scheduler queue").push_back(task);
        inner.available.notify_one();
        Ok(rx)
    }

    /// Stops admitting new sessions. Already-admitted sessions keep
    /// decoding until they finish.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
    }

    /// Initiates shutdown and blocks until every worker has drained the
    /// queue and exited.
    pub fn join(&self) {
        self.shutdown();
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("scheduler workers")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.join();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let task = {
            let mut queue = inner.queue.lock().expect("scheduler queue");
            loop {
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                if inner.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.available.wait(queue).expect("scheduler queue");
            }
        };
        run_slice(inner, task);
    }
}

/// Decodes one slice of a session; re-queues it if it isn't finished.
fn run_slice(inner: &Inner, mut task: Task) {
    // First slice: prefill the prompt (the expensive O(prompt) part) on
    // this worker and record how long the session waited in queue.
    let (mut decoder, deadline) = match task.state {
        TaskState::Pending(req) => {
            let queue_us = elapsed_us(task.admitted);
            task.queue_us = Some(queue_us);
            inner.metrics.on_first_slice(queue_us);
            if past(req.deadline) {
                inner.metrics.on_deadline_exceeded();
                finish(inner, &task.reply, Err(deadline_error(task.admitted)));
                return;
            }
            match StepDecoder::new(&req.model, &req.prompt, &req.cfg) {
                Ok(decoder) => (decoder, req.deadline),
                Err(e) => {
                    inner.metrics.on_failed();
                    finish(inner, &task.reply, Err(e.into()));
                    return;
                }
            }
        }
        TaskState::Running { decoder, deadline } => (decoder, deadline),
    };

    for _ in 0..inner.cfg.slice_tokens {
        if past(deadline) {
            inner.metrics.on_deadline_exceeded();
            finish(inner, &task.reply, Err(deadline_error(task.admitted)));
            return;
        }
        match decoder.step() {
            Ok(Some(token)) => task.produced.push(token),
            Ok(None) => {
                let finish_reason = if decoder.stopped_at_eos() {
                    FinishReason::Eos
                } else {
                    FinishReason::Length
                };
                let total_us = elapsed_us(task.admitted);
                inner.metrics.on_completed(task.produced.len(), total_us);
                let result = SessionResult {
                    tokens: std::mem::take(&mut task.produced),
                    finish: finish_reason,
                    queue_us: task.queue_us.unwrap_or(0),
                    total_us,
                };
                finish(inner, &task.reply, Ok(result));
                return;
            }
            Err(e) => {
                inner.metrics.on_failed();
                finish(inner, &task.reply, Err(e.into()));
                return;
            }
        }
    }

    // Slice exhausted with the session still alive: rotate to the back of
    // the queue so other sessions get their turn.
    task.state = TaskState::Running { decoder, deadline };
    inner.queue.lock().expect("scheduler queue").push_back(task);
    inner.available.notify_one();
}

fn finish(inner: &Inner, reply: &Sender<SessionOutcome>, outcome: SessionOutcome) {
    // The receiver may have given up (client gone); that's not an error.
    let _ = reply.send(outcome);
    inner.active.fetch_sub(1, Ordering::SeqCst);
}

fn past(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn deadline_error(admitted: Instant) -> ServeError {
    ServeError::DeadlineExceeded {
        waited_ms: elapsed_us(admitted) / 1_000,
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipalign_model::ArchSpec;
    use chipalign_tensor::rng::Pcg32;
    use std::time::Duration;

    fn model() -> Arc<TinyLm> {
        let mut arch = ArchSpec::tiny("sched");
        arch.vocab_size = 99;
        Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(11)).expect("model"))
    }

    fn greedy(max_new_tokens: usize) -> GenerateConfig {
        GenerateConfig {
            max_new_tokens,
            stop_at_eos: false,
            ..GenerateConfig::default()
        }
    }

    fn request(model: &Arc<TinyLm>, budget: usize, deadline: Option<Instant>) -> SessionRequest {
        SessionRequest {
            model: Arc::clone(model),
            prompt: vec![5, 6, 7],
            cfg: greedy(budget),
            deadline,
        }
    }

    #[test]
    fn sessions_complete_and_match_generate() {
        let m = model();
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 2,
                max_sessions: 8,
                slice_tokens: 4,
            },
            Arc::new(Metrics::new()),
        );
        let rx = scheduler.submit(request(&m, 24, None)).expect("admit");
        let result = rx.recv().expect("outcome").expect("ok");
        assert_eq!(result.tokens.len(), 24);
        assert_eq!(result.finish, FinishReason::Length);
        let reference = chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(24)).expect("ok");
        assert_eq!(result.tokens, reference, "scheduled == single-threaded");
        scheduler.join();
    }

    #[test]
    fn many_interleaved_sessions_each_match_generate() {
        let m = model();
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 2,
                max_sessions: 16,
                slice_tokens: 2,
            },
            Arc::new(Metrics::new()),
        );
        // Mixed lengths force interleaving across slices.
        let budgets = [3usize, 17, 9, 40, 1, 25];
        let receivers: Vec<_> = budgets
            .iter()
            .map(|&b| scheduler.submit(request(&m, b, None)).expect("admit"))
            .collect();
        for (rx, &budget) in receivers.into_iter().zip(&budgets) {
            let result = rx.recv().expect("outcome").expect("ok");
            let reference =
                chipalign_nn::generate::generate(&m, &[5, 6, 7], &greedy(budget)).expect("ok");
            assert_eq!(result.tokens, reference, "budget {budget}");
        }
        assert_eq!(scheduler.active(), 0);
        scheduler.join();
    }

    #[test]
    fn admission_bound_rejects_fast() {
        let m = model();
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                max_sessions: 2,
                slice_tokens: 1,
            },
            Arc::new(Metrics::new()),
        );
        // Two slow sessions occupy both slots; deadlines keep the test
        // finite even on a loaded machine.
        let deadline = Some(Instant::now() + Duration::from_millis(400));
        let rx1 = scheduler
            .submit(request(&m, 1_000_000, deadline))
            .expect("one");
        let rx2 = scheduler
            .submit(request(&m, 1_000_000, deadline))
            .expect("two");
        let third = scheduler.submit(request(&m, 4, None));
        assert!(
            matches!(third, Err(ServeError::Overloaded { capacity: 2, .. })),
            "third submission must be rejected, got {third:?}"
        );
        // Both occupants eventually leave (deadline or completion).
        assert!(rx1.recv().is_ok());
        assert!(rx2.recv().is_ok());
        assert_eq!(scheduler.active(), 0);
        scheduler.join();
    }

    #[test]
    fn deadline_is_reported_as_such() {
        let m = model();
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                max_sessions: 4,
                slice_tokens: 1,
            },
            Arc::clone(&metrics),
        );
        let deadline = Some(Instant::now() + Duration::from_millis(50));
        let rx = scheduler
            .submit(request(&m, 10_000_000, deadline))
            .expect("admit");
        let outcome = rx.recv().expect("outcome");
        assert!(
            matches!(outcome, Err(ServeError::DeadlineExceeded { .. })),
            "got {outcome:?}"
        );
        assert_eq!(metrics.snapshot().deadline_exceeded, 1);
        scheduler.join();
    }

    #[test]
    fn shutdown_drains_in_flight_sessions_and_rejects_new_ones() {
        let m = model();
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: 2,
                max_sessions: 8,
                slice_tokens: 2,
            },
            Arc::new(Metrics::new()),
        );
        let receivers: Vec<_> = (0..4)
            .map(|_| scheduler.submit(request(&m, 30, None)).expect("admit"))
            .collect();
        scheduler.shutdown();
        assert!(matches!(
            scheduler.submit(request(&m, 4, None)),
            Err(ServeError::ShuttingDown)
        ));
        // join() returns only after the queue is drained — so every
        // receiver must already hold a completed generation.
        scheduler.join();
        for rx in receivers {
            let result = rx
                .try_recv()
                .expect("drained before join returned")
                .expect("ok");
            assert_eq!(result.tokens.len(), 30);
        }
    }
}

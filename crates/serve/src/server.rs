//! The TCP front end: accept loop, connection handlers, request dispatch.
//!
//! The server owns a [`ModelRegistry`] and a [`Scheduler`]. Each accepted
//! connection gets its own handler thread that reads newline-delimited JSON
//! [`Request`]s and answers each with exactly one [`Response`] line, in
//! order. Generation requests are tokenized, resolved against the registry
//! (materializing geodesic merges on demand), and submitted to the
//! scheduler; everything else (`models`, `load`, `unload`, `metrics`,
//! `ping`) is answered inline.
//!
//! Shutdown is graceful by construction: [`Server::shutdown`] flips a stop
//! flag the accept loop polls, then the scheduler drains every admitted
//! session before its workers exit, so no accepted generation is ever
//! dropped mid-flight.

use std::io::{BufRead, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chipalign_nn::{CharTokenizer, BOS};

use crate::metrics::Metrics;
use crate::protocol::{self, GenerateRequest, Generation, Request, Response, PROTOCOL_VERSION};
use crate::registry::ModelRegistry;
use crate::scheduler::{Scheduler, SchedulerConfig, SessionRequest, SpecDraft};
use crate::ServeError;

/// How often the accept loop and idle connections poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; use port 0 for an ephemeral port.
    pub addr: String,
    /// Scheduler tuning.
    pub scheduler: SchedulerConfig,
    /// Hard cap on `max_new_tokens` per request.
    pub max_new_tokens_cap: usize,
    /// Deadline applied to requests that do not carry their own, in
    /// milliseconds. `None` means unbounded.
    pub default_deadline_ms: Option<u64>,
    /// Replica identity prefixed onto every session tag
    /// (`"<instance>/<model key>"`). Lets fleet chaos tests arm
    /// `serve::faults` rules that hit exactly one replica in a
    /// multi-replica process, and labels this replica in fleet logs.
    /// `None` keeps the bare model key as the tag.
    pub instance_tag: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig::default(),
            max_new_tokens_cap: 512,
            default_deadline_ms: None,
            instance_tag: None,
        }
    }
}

struct ServerInner {
    registry: ModelRegistry,
    scheduler: Scheduler,
    metrics: Arc<Metrics>,
    tokenizer: CharTokenizer,
    cfg: ServerConfig,
    stop: AtomicBool,
    /// Set by [`Server::kill`]: connection handlers abandon their wait for
    /// in-flight replies instead of draining.
    killed: AtomicBool,
}

/// A running inference server.
pub struct Server {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Server({})", self.addr)
    }
}

impl Server {
    /// Binds the listener, starts the scheduler workers and the accept
    /// loop, and returns immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the address cannot be bound.
    pub fn bind(cfg: ServerConfig, registry: ModelRegistry) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // The backend choice is process-wide and made exactly once; saying
        // it at startup is the only way an operator learns whether the
        // AVX2 tier actually engaged on this host.
        eprintln!(
            "chipalign-serve: listening on {addr}, kernel backend {}",
            chipalign_tensor::backend::active_name()
        );
        let metrics = Arc::new(Metrics::new());
        registry.attach_metrics(Arc::clone(&metrics));
        let scheduler = Scheduler::start(cfg.scheduler.clone(), Arc::clone(&metrics));
        let inner = Arc::new(ServerInner {
            registry,
            scheduler,
            metrics,
            tokenizer: CharTokenizer::new(),
            cfg,
            stop: AtomicBool::new(false),
            killed: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("chipalign-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_inner))
            .map_err(ServeError::Io)?;
        Ok(Server {
            inner,
            addr,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle to the server's metrics core.
    #[must_use]
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// The model registry backing this server.
    #[must_use]
    pub fn registry(&self) -> &ModelRegistry {
        &self.inner.registry
    }

    /// Stops accepting connections and drains every admitted session, then
    /// returns. Safe to call more than once.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let handle = self
            .accept_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        self.inner.scheduler.join();
    }

    /// Kills the replica abruptly: no drain. Queued and in-flight sessions
    /// are answered with a structured `shutting_down` error (the
    /// scheduler's [`Scheduler::abort`] path) and connection handlers stop
    /// waiting on replies, so from a client's perspective the replica
    /// either returns a retryable verdict or drops the connection —
    /// exactly the two faults the [`crate::client::Retrier`] and the
    /// router's failover absorb. The fleet chaos suite uses this to take
    /// whole replicas down mid-decode. Safe to call more than once;
    /// `shutdown` after `kill` is a no-op.
    pub fn kill(&self) {
        self.inner.killed.store(true, Ordering::SeqCst);
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.scheduler.abort();
        let handle = self
            .accept_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        self.inner.scheduler.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<ServerInner>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_inner = Arc::clone(inner);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("chipalign-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &conn_inner))
                {
                    handlers.push(handle);
                }
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(stream: TcpStream, inner: &Arc<ServerInner>) {
    // A short read timeout doubles as the stop-flag poll interval for idle
    // connections.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = match protocol::parse_line::<Request>(&line) {
                    Ok(req) => dispatch(inner, req),
                    Err(e) => Response::Error(e.to_wire()),
                };
                if protocol::write_line(&mut writer, &response).is_err() {
                    return; // client gone
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn dispatch(inner: &Arc<ServerInner>, req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong {
            version: PROTOCOL_VERSION,
        },
        Request::Metrics => Response::Metrics(inner.metrics.snapshot()),
        Request::Models => Response::Models {
            loaded: inner.registry.loaded(),
            zoo: crate::registry::all_zoo_models()
                .iter()
                .map(|m| m.slug())
                .collect(),
            models: inner
                .registry
                .loaded_details()
                .into_iter()
                .map(
                    |(model, dtype, weights_bytes)| crate::protocol::LoadedModel {
                        model,
                        dtype: dtype.to_string(),
                        weights_bytes,
                    },
                )
                .collect(),
        },
        Request::Load { model } => match inner.registry.resolve_str(&model) {
            Ok((key, _model)) => Response::Loaded { model: key },
            Err(e) => Response::Error(e.to_wire()),
        },
        Request::Unload { model } => Response::Unloaded {
            evicted: inner.registry.evict(&model),
            model,
        },
        Request::Generate(gen) => match serve_generation(inner, &gen) {
            Ok(g) => Response::Generation(g),
            Err(e) => Response::Error(e.to_wire()),
        },
        // Fleet management is the router's job; a single replica answers
        // with a structured verdict instead of dropping the connection, so
        // fleet tooling pointed at the wrong port fails loudly and
        // harmlessly.
        Request::Fleet | Request::Drain { .. } => Response::Error(
            ServeError::BadRequest {
                detail: "fleet requests are answered by chipalign-router, not a single replica"
                    .to_string(),
            }
            .to_wire(),
        ),
    }
}

fn serve_generation(
    inner: &Arc<ServerInner>,
    gen: &GenerateRequest,
) -> Result<Generation, ServeError> {
    if gen.prompt.is_empty() {
        return Err(ServeError::BadRequest {
            detail: "prompt must not be empty".into(),
        });
    }
    if gen.retry_attempt > 0 {
        inner.metrics.on_retry_attempted();
    }
    let cfg = gen.decode_config(inner.cfg.max_new_tokens_cap);
    cfg.validate().map_err(ServeError::from)?;
    // Speculative specs (`spec:<target>|<draft>@<k>`) resolve to a
    // (target, draft) pairing; anything else to a single model. KV pool
    // and dtype selection always follow the target key, so speculative
    // traffic shares pools with plain traffic against the same target.
    let (key, pool_key, model, draft) = match inner.registry.resolve_spec_str(&gen.model)? {
        Some(res) => {
            let draft = SpecDraft {
                model: res.draft,
                k: res.k,
            };
            (res.key, res.target_key, res.target, Some(draft))
        }
        None => {
            let (key, model) = inner.registry.resolve_str(&gen.model)?;
            (key.clone(), key, model, None)
        }
    };
    let mut prompt = vec![BOS];
    prompt.extend(inner.tokenizer.encode(&gen.prompt));
    let prompt_tokens = prompt.len();
    let deadline_ms = gen.deadline_ms.or(inner.cfg.default_deadline_ms);
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    // Every served session decodes on the model's paged KV pool, so block
    // accounting, prefix aliasing, and pool-saturation admission all apply
    // on the wire path (library callers may still opt out with `pool: None`).
    // The canonical key picks the pool dtype: `…#kv8` keys draw from the
    // model's int8 pool, everything else from the f32 one.
    let pool = inner.registry.kv_pool_for(&pool_key, &model);
    // Session tags carry the replica identity when one is configured, so
    // process-global fault rules can single out one replica's sessions.
    let tag = match &inner.cfg.instance_tag {
        Some(instance) => format!("{instance}/{key}"),
        None => key.clone(),
    };
    let rx = inner.scheduler.submit(SessionRequest {
        model,
        prompt,
        cfg,
        deadline,
        tag,
        pool: Some(pool),
        draft,
    })?;
    #[cfg(feature = "fault-inject")]
    {
        // An admitted session whose client vanished: drop the receiver so
        // the worker's send fails harmlessly, exactly as when a TCP peer
        // disappears mid-generation.
        if crate::faults::should_fire(crate::faults::Site::ClientDisconnect, &gen.model) {
            drop(rx);
            return Err(ServeError::Internal {
                detail: "injected client disconnect: session abandoned".to_string(),
            });
        }
    }
    // Poll the kill flag while waiting: a killed replica must not leave
    // handlers blocked on sessions the aborted scheduler will answer only
    // as it tears down. A closed channel here means the session died with
    // its worker in a way even the drop guard could not report — an
    // internal fault, not a shutdown (graceful drains always answer every
    // admitted session; scheduler::tests pin that contract even for drains
    // initiated mid-chunked-prefill).
    let result = loop {
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(outcome) => break outcome,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if inner.killed.load(Ordering::SeqCst) {
                    return Err(ServeError::ShuttingDown);
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return Err(ServeError::Internal {
                    detail: "session lost: outcome channel closed without a reply".to_string(),
                });
            }
        }
    }?;
    Ok(Generation {
        model: key,
        text: inner.tokenizer.decode(&result.tokens),
        tokens: result.tokens.len(),
        prompt_tokens,
        finish: result.finish,
        queue_ms: result.queue_us / 1_000,
        latency_ms: result.total_us / 1_000,
    })
}

//! Property tests for the batched scheduler: random admission/completion
//! interleavings, random session mixes, and every `max_batch` in
//! `{1, 2, 4}` must be invisible in the per-session transcripts — each one
//! byte-identical to a single-threaded `generate()` — while the metrics
//! stay internally consistent.
//!
//! These drive the [`Scheduler`] directly (no TCP) so each case is cheap
//! enough to run dozens of random schedules.

use std::sync::Arc;

use chipalign_model::ArchSpec;
use chipalign_nn::generate::{generate, GenerateConfig};
use chipalign_nn::{KvDtype, KvPool, KvPoolConfig, StepDecoder, TinyLm};
use chipalign_serve::{Metrics, Scheduler, SchedulerConfig, SessionRequest};
use chipalign_tensor::rng::Pcg32;
use proptest::prelude::*;

fn model(seed: u64) -> Arc<TinyLm> {
    let mut arch = ArchSpec::tiny("batch-prop");
    arch.vocab_size = 99;
    Arc::new(TinyLm::new(&arch, &mut Pcg32::seed(seed)).expect("model"))
}

fn greedy(max_new_tokens: usize) -> GenerateConfig {
    GenerateConfig {
        max_new_tokens,
        stop_at_eos: false,
        ..GenerateConfig::default()
    }
}

/// One session in a random schedule: its budget, prompt, whether the
/// submitting thread first waits for an *earlier* session to complete —
/// which is what interleaves admissions with completions — and whether it
/// decodes on the shared paged KV pool instead of a contiguous cache.
#[derive(Debug, Clone)]
struct Job {
    budget: usize,
    prompt: Vec<u32>,
    wait_first: bool,
    pooled: bool,
}

fn job_strategy() -> impl Strategy<Value = Job> {
    (
        1usize..24,
        proptest::collection::vec(4u32..90, 1..6),
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(budget, prompt, wait_first, pooled)| Job {
            budget,
            prompt,
            wait_first,
            pooled,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_interleavings_are_invisible_at_every_max_batch(
        seed in 0u64..20,
        jobs in proptest::collection::vec(job_strategy(), 2..10),
        max_batch_idx in 0usize..3,
        workers in 1usize..3,
        slice_tokens in 1usize..4,
    ) {
        let max_batch = [1usize, 2, 4][max_batch_idx];
        let m = model(seed);
        // Generous pool: these cases probe bit-identity of paged storage
        // under random interleavings, not admission pressure.
        let pool = KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks: 4096,
            ..KvPoolConfig::default()
        })
        .expect("pool");
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers,
                max_sessions: jobs.len(),
                slice_tokens,
                stall_slices: 32,
                max_batch,
                ..SchedulerConfig::default()
            },
            Arc::clone(&metrics),
        );

        // Random interleaving: before some admissions, block on the oldest
        // outstanding session, so completions are threaded through the
        // admission sequence instead of all landing at the end.
        let mut pending = std::collections::VecDeque::new();
        let mut results = Vec::with_capacity(jobs.len());
        for job in &jobs {
            if job.wait_first {
                if let Some((rx, j)) = pending.pop_front() {
                    results.push((outcome_tokens(rx), j));
                }
            }
            let rx = scheduler
                .submit(SessionRequest {
                    model: Arc::clone(&m),
                    prompt: job.prompt.clone(),
                    cfg: greedy(job.budget),
                    deadline: None,
                    tag: "prop".to_string(),
                    pool: job.pooled.then(|| Arc::clone(&pool)),
                    draft: None,
                })
                .expect("within max_sessions by construction");
            pending.push_back((rx, job.clone()));
        }
        while let Some((rx, j)) = pending.pop_front() {
            results.push((outcome_tokens(rx), j));
        }

        for (tokens, job) in &results {
            let reference = generate(&m, &job.prompt, &greedy(job.budget)).expect("reference");
            prop_assert_eq!(
                tokens,
                &reference,
                "transcript changed under max_batch={} workers={}",
                max_batch,
                workers
            );
        }

        prop_assert_eq!(scheduler.active(), 0);
        scheduler.join();
        let snap = metrics.snapshot();
        prop_assert_eq!(snap.completed, jobs.len() as u64);
        prop_assert_eq!(snap.failed, 0);
        prop_assert_eq!(snap.worker_panics, 0);
        prop_assert_eq!(snap.watchdog_cancels, 0);
        let expected_tokens: u64 = jobs.iter().map(|j| j.budget as u64).sum();
        prop_assert_eq!(snap.tokens_out, expected_tokens);
        // Occupancy bookkeeping: every dequeued slice lands in exactly one
        // bucket, batched_slices counts exactly the multi-session ones, and
        // no slice can exceed the configured batch width.
        let occupied: u64 = snap.batch_occupancy.iter().sum();
        prop_assert_eq!(occupied, snap.batch_occupancy[1] + snap.batched_slices);
        for (n, &count) in snap.batch_occupancy.iter().enumerate() {
            if n > max_batch {
                prop_assert_eq!(count, 0, "slice wider than max_batch={}", max_batch);
            }
        }
        if max_batch == 1 {
            prop_assert_eq!(snap.batched_slices, 0);
        }
    }

    #[test]
    fn mixed_dtype_sessions_coexist_without_cross_talk(
        seed in 0u64..20,
        jobs in proptest::collection::vec(job_strategy(), 2..8),
        workers in 1usize..3,
        slice_tokens in 1usize..4,
    ) {
        // f32-paged and int8-paged sessions share one scheduler, and the
        // int8 ones share one pool; each transcript must match a fresh
        // single-threaded decode *at the same dtype*, bitwise. f32 paged
        // decode is bit-identical to contiguous, so `generate()` is its
        // reference; each int8 session replays through a private int8
        // pool (block seals are positional, so chunked scheduler prefill
        // and sliced decode quantize identically to the sequential run).
        // `Job::pooled` picks the dtype here: true → int8, false → f32.
        let m = model(seed);
        let f32_pool = KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks: 4096,
            ..KvPoolConfig::default()
        })
        .expect("pool");
        let int8_pool = KvPool::new(KvPoolConfig {
            block_tokens: 4,
            max_blocks: 4096,
            dtype: KvDtype::Int8,
        })
        .expect("pool");
        let metrics = Arc::new(Metrics::new());
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers,
                max_sessions: jobs.len(),
                slice_tokens,
                stall_slices: 32,
                max_batch: 4,
                ..SchedulerConfig::default()
            },
            Arc::clone(&metrics),
        );

        let mut pending = std::collections::VecDeque::new();
        let mut results = Vec::with_capacity(jobs.len());
        for job in &jobs {
            if job.wait_first {
                if let Some((rx, j)) = pending.pop_front() {
                    results.push((outcome_tokens(rx), j));
                }
            }
            let pool = if job.pooled { &int8_pool } else { &f32_pool };
            let rx = scheduler
                .submit(SessionRequest {
                    model: Arc::clone(&m),
                    prompt: job.prompt.clone(),
                    cfg: greedy(job.budget),
                    deadline: None,
                    tag: "prop".to_string(),
                    pool: Some(Arc::clone(pool)),
                    draft: None,
                })
                .expect("within max_sessions by construction");
            pending.push_back((rx, job.clone()));
        }
        while let Some((rx, j)) = pending.pop_front() {
            results.push((outcome_tokens(rx), j));
        }

        for (tokens, job) in &results {
            let cfg = greedy(job.budget);
            let reference = if job.pooled {
                let rp = KvPool::new(KvPoolConfig {
                    block_tokens: 4,
                    max_blocks: 4096,
                    dtype: KvDtype::Int8,
                })
                .expect("pool");
                let mut session =
                    StepDecoder::new_chunked_pooled(&m, &job.prompt, &cfg, &rp).expect("session");
                session.prefill_pending(usize::MAX).expect("prefill");
                let mut toks = Vec::with_capacity(job.budget);
                while let Some(next) = session.step().expect("step") {
                    toks.push(next);
                }
                toks
            } else {
                generate(&m, &job.prompt, &cfg).expect("reference")
            };
            prop_assert_eq!(
                tokens,
                &reference,
                "{} transcript changed under shared mixed-dtype scheduling",
                if job.pooled { "int8" } else { "f32" }
            );
        }

        prop_assert_eq!(scheduler.active(), 0);
        scheduler.join();
        let snap = metrics.snapshot();
        prop_assert_eq!(snap.completed, jobs.len() as u64);
        prop_assert_eq!(snap.failed, 0);
        // Both pools drained: every block (and byte) went back.
        prop_assert_eq!(f32_pool.blocks_in_use(), 0);
        prop_assert_eq!(int8_pool.blocks_in_use(), 0);
        prop_assert_eq!(f32_pool.bytes_in_use(), 0);
        prop_assert_eq!(int8_pool.bytes_in_use(), 0);
    }
}

fn outcome_tokens(
    rx: std::sync::mpsc::Receiver<chipalign_serve::scheduler::SessionOutcome>,
) -> Vec<u32> {
    rx.recv()
        .expect("scheduler always reports")
        .expect("no faults armed")
        .tokens
}

//! Chaos tests: the server under deterministic injected faults.
//!
//! Requires `--features fault-inject`. Every test arms the global fault
//! plan through an exclusive [`chipalign_serve::faults::scope`] (which
//! also serializes the tests), drives real traffic over TCP, and asserts
//! the three fault-tolerance invariants:
//!
//! 1. the *affected* sessions fail with the right structured error code
//!    and exactly the right metric counter moves;
//! 2. *healthy* sessions are untouched — byte-identical to a
//!    single-threaded `generate()` of the same model;
//! 3. the server still drains cleanly afterward.

#![cfg(feature = "fault-inject")]

use std::time::{Duration, Instant};

use chipalign_merge::{GeodesicMerge, Merger};
use chipalign_model::{format, ArchSpec};
use chipalign_nn::generate::generate;
use chipalign_nn::{CharTokenizer, TinyLm, BOS};
use chipalign_pipeline::zoo::{Backbone, Quality, Zoo, ZooConfig, ZooModel};
use chipalign_serve::faults::{self, Site, Trigger};
use chipalign_serve::{
    Client, ErrorCode, GenerateRequest, MetricsSnapshot, ModelRegistry, SchedulerConfig,
    ServeError, Server, ServerConfig,
};
use chipalign_tensor::rng::Pcg32;

fn smoke_zoo(seed: u64) -> Zoo {
    Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed,
        cache_dir: None,
    })
    .expect("zoo")
}

fn server_config(workers: usize, stall_slices: u64) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // max_batch 1 pins the single-session slice path; batched fault
        // isolation has its own test below.
        scheduler: SchedulerConfig {
            workers,
            max_sessions: 16,
            slice_tokens: 4,
            stall_slices,
            max_batch: 1,
            ..SchedulerConfig::default()
        },
        max_new_tokens_cap: 10_000_000,
        default_deadline_ms: None,
        instance_tag: None,
    }
}

fn random_model(seed: u64) -> TinyLm {
    let mut arch = ArchSpec::tiny("chaos");
    arch.vocab_size = 99;
    TinyLm::new(&arch, &mut Pcg32::seed(seed)).expect("model")
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chipalign-chaos-{name}"));
    // Start fresh so persisted files from a previous run can't mask bugs.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Asserts a generation of `model` over `addr` is byte-identical to a
/// single-threaded `generate()` with the same checkpoint and config.
fn assert_healthy(addr: std::net::SocketAddr, model_name: &str, reference: &TinyLm, prompt: &str) {
    let mut client = Client::connect(addr).expect("connect");
    let mut req = GenerateRequest::greedy(model_name, prompt, 24);
    req.stop_at_eos = false;
    let served = client.generate(req.clone()).expect("healthy generate");
    let tok = CharTokenizer::new();
    let mut ids = vec![BOS];
    ids.extend(tok.encode(prompt));
    let expected = generate(reference, &ids, &req.decode_config(10_000_000)).expect("reference");
    assert_eq!(
        served.text,
        tok.decode(&expected),
        "healthy session must be byte-identical to generate()"
    );
}

/// Asserts the fault counters in `snap` are exactly `expected` =
/// (worker_panics, watchdog_cancels, checksum_failures, workers_respawned)
/// — each fault class moves its own counter and nothing else.
fn assert_fault_counters(snap: &MetricsSnapshot, expected: (u64, u64, u64, u64)) {
    assert_eq!(snap.worker_panics, expected.0, "worker_panics in {snap:?}");
    assert_eq!(
        snap.watchdog_cancels, expected.1,
        "watchdog_cancels in {snap:?}"
    );
    assert_eq!(
        snap.checksum_failures, expected.2,
        "checksum_failures in {snap:?}"
    );
    assert_eq!(
        snap.workers_respawned, expected.3,
        "workers_respawned in {snap:?}"
    );
}

/// Shuts the server down and asserts the port actually closed.
fn assert_clean_drain(server: Server) {
    let addr = server.local_addr();
    server.shutdown();
    assert!(
        Client::connect(addr).is_err(),
        "server must stop accepting after shutdown"
    );
}

fn remote_code(result: Result<chipalign_serve::Generation, ServeError>) -> (ErrorCode, String) {
    match result {
        Err(ServeError::Remote(w)) => (w.code, w.detail),
        other => panic!("expected a wire error, got {other:?}"),
    }
}

#[test]
fn worker_panic_cancels_only_the_poisoned_session() {
    let _scope = faults::scope(101);
    faults::arm(Site::WorkerPanic, Some("poison"), Trigger::Once(1));

    let registry = ModelRegistry::new(smoke_zoo(31));
    let healthy_model = random_model(1);
    registry.register("healthy", healthy_model.clone());
    registry.register("poison", random_model(2));
    let server = Server::bind(server_config(2, 32), registry).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let (code, detail) =
        remote_code(client.generate(GenerateRequest::greedy("poison", "boom", 24)));
    assert_eq!(code, ErrorCode::Internal);
    assert!(detail.contains("panic"), "detail names the panic: {detail}");

    assert_healthy(addr, "healthy", &healthy_model, "still fine");
    let snap = client.metrics().expect("metrics");
    assert_fault_counters(&snap, (1, 0, 0, 0));
    assert_eq!(snap.failed, 0, "a panic is not a decode failure");
    assert_eq!(snap.completed, 1);
    assert_clean_drain(server);
}

/// Batched fault isolation: a panic injected into one session of a full
/// batch cancels only that session. Its batch-mates — advanced through the
/// very same `step_batch` calls — finish byte-identical to a
/// single-threaded `generate()`, and exactly one panic is counted.
#[test]
fn batched_panic_cancels_only_the_poisoned_batch_mate() {
    let _scope = faults::scope(110);
    // Fire on the poisoned session's *third* slice: by then all four
    // concurrent sessions are admitted and the single worker is draining
    // them together, so the panic lands mid-batch.
    faults::arm(Site::WorkerPanic, Some("poison"), Trigger::Once(3));

    let registry = ModelRegistry::new(smoke_zoo(39));
    // One underlying model under both names: batches mix poisoned and
    // healthy sessions, and one reference transcript covers them all.
    let shared = random_model(13);
    registry.register("healthy", shared.clone());
    registry.register("poison", shared.clone());
    let cfg = ServerConfig {
        scheduler: SchedulerConfig {
            workers: 1,
            max_sessions: 16,
            slice_tokens: 4,
            stall_slices: 32,
            max_batch: 4,
            ..SchedulerConfig::default()
        },
        ..server_config(1, 32)
    };
    let server = Server::bind(cfg, registry).expect("bind");
    let addr = server.local_addr();
    let metrics = server.metrics();

    // Budget 200 (dozens of slices, several window slides) plus a start
    // barrier: all four requests are in flight together, so the single
    // worker has no choice but to form real batches.
    let budget = 200;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(4));
    let handles: Vec<_> = ["healthy", "healthy", "healthy", "poison"]
        .into_iter()
        .map(|name| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut req = GenerateRequest::greedy(name, "same prompt", budget);
                req.stop_at_eos = false;
                barrier.wait();
                (name, client.generate(req))
            })
        })
        .collect();
    let mut poisoned = None;
    let mut healthy_texts = Vec::new();
    for h in handles {
        let (name, outcome) = h.join().expect("client thread");
        if name == "poison" {
            poisoned = Some(remote_code(outcome));
        } else {
            healthy_texts.push(outcome.expect("healthy generate").text);
        }
    }

    let (code, detail) = poisoned.expect("poisoned outcome");
    assert_eq!(code, ErrorCode::Internal);
    assert!(detail.contains("panic"), "detail names the panic: {detail}");

    let tok = CharTokenizer::new();
    let mut ids = vec![BOS];
    ids.extend(tok.encode("same prompt"));
    let mut reference_req = GenerateRequest::greedy("healthy", "same prompt", budget);
    reference_req.stop_at_eos = false;
    let expected = generate(&shared, &ids, &reference_req.decode_config(10_000_000)).expect("ref");
    for (i, text) in healthy_texts.iter().enumerate() {
        assert_eq!(
            text,
            &tok.decode(&expected),
            "batch-mate {i} must be byte-identical to generate()"
        );
    }

    let snap = metrics.snapshot();
    assert_fault_counters(&snap, (1, 0, 0, 0));
    assert_eq!(snap.completed, 3, "three healthy batch-mates finished");
    assert_eq!(snap.failed, 0, "a panic is not a decode failure");
    assert!(
        snap.batched_slices >= 1,
        "four concurrent sessions on one worker must have batched: {snap:?}"
    );
    assert_clean_drain(server);
}

/// Draft-panic isolation: a panic injected into the speculative draft
/// phase kills *speculation*, not the session. The session degrades to
/// plain decoding, finishes byte-identical to a single-threaded
/// `generate()` on the target, counts a speculative fallback — and no
/// worker panicked, because the draft's panic never escaped its boundary.
#[test]
fn draft_panic_degrades_the_session_to_plain_decode() {
    const SPEC: &str = "spec:tgt|drafty@4";
    let _scope = faults::scope(111);
    // The session tag carries the canonical spec key, so the fault plan
    // can target exactly the speculative session.
    faults::arm(Site::SpecDraft, Some(SPEC), Trigger::Once(1));

    let registry = ModelRegistry::new(smoke_zoo(40));
    let target = random_model(14);
    registry.register("tgt", target.clone());
    registry.register("drafty", random_model(15));
    let server = Server::bind(server_config(2, 32), registry).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let mut req = GenerateRequest::greedy(SPEC, "draft dies", 24);
    req.stop_at_eos = false;
    let served = client
        .generate(req.clone())
        .expect("the session must survive the draft panic");

    let tok = CharTokenizer::new();
    let mut ids = vec![BOS];
    ids.extend(tok.encode("draft dies"));
    let expected = generate(&target, &ids, &req.decode_config(10_000_000)).expect("reference");
    assert_eq!(
        served.text,
        tok.decode(&expected),
        "degraded decode must be byte-identical to generate() on the target"
    );
    assert_eq!(served.tokens, 24);
    assert!(faults::hits(Site::SpecDraft) >= 1, "the fault must fire");

    let snap = client.metrics().expect("metrics");
    assert!(
        snap.spec_fallbacks >= 1,
        "the caught draft panic counts a speculative fallback: {snap:?}"
    );
    assert_eq!(
        snap.accepted_draft_tokens, 0,
        "the draft died on its first phase; nothing was accepted"
    );
    assert_fault_counters(&snap, (0, 0, 0, 0));
    assert_eq!(snap.completed, 1, "the session completed normally");
    assert_eq!(snap.failed, 0, "a draft panic is not a session failure");
    assert_clean_drain(server);
}

#[test]
fn watchdog_cancels_a_stalled_session() {
    let _scope = faults::scope(102);
    faults::arm(Site::SessionStall, Some("stuck"), Trigger::Always);

    let registry = ModelRegistry::new(smoke_zoo(32));
    let healthy_model = random_model(3);
    registry.register("healthy", healthy_model.clone());
    registry.register("stuck", random_model(4));
    let server = Server::bind(server_config(2, 3), registry).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let (code, detail) =
        remote_code(client.generate(GenerateRequest::greedy("stuck", "going nowhere", 24)));
    assert_eq!(code, ErrorCode::DeadlineExceeded);
    assert!(detail.contains("stalled"), "detail explains: {detail}");
    assert!(detail.contains("3 scheduler slices"), "got {detail}");

    assert_healthy(addr, "healthy", &healthy_model, "not stuck");
    let snap = client.metrics().expect("metrics");
    assert_fault_counters(&snap, (0, 1, 0, 0));
    assert_eq!(snap.deadline_exceeded, 0, "watchdog has its own counter");
    assert_clean_drain(server);
}

#[test]
fn corrupt_checkpoint_file_is_a_structured_error_not_a_crash() {
    let _scope = faults::scope(103);
    let dir = temp_dir("corrupt");

    // A valid checkpoint, then a bit flip; and a truncated sibling.
    let ckpt = random_model(5).to_checkpoint().expect("ckpt");
    let bytes = format::encode(&ckpt).to_vec();
    let flipped_path = dir.join("flipped.calt");
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xFF;
    std::fs::write(&flipped_path, &flipped).expect("write");
    let truncated_path = dir.join("truncated.calt");
    std::fs::write(&truncated_path, &bytes[..bytes.len() / 3]).expect("write");

    let registry = ModelRegistry::new(smoke_zoo(33));
    let healthy_model = random_model(6);
    registry.register("healthy", healthy_model.clone());
    let server = Server::bind(server_config(2, 32), registry).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    for path in [&flipped_path, &truncated_path] {
        let spec = format!("file:{}", path.display());
        let (code, detail) = remote_code(client.generate(GenerateRequest::greedy(&spec, "hi", 8)));
        assert_eq!(code, ErrorCode::Internal, "damaged file for {spec}");
        assert!(detail.contains("corrupt"), "got {detail}");
    }
    let (loaded, _zoo) = client.models().expect("models");
    assert_eq!(
        loaded,
        vec!["healthy".to_string()],
        "nothing damaged cached"
    );

    assert_healthy(addr, "healthy", &healthy_model, "undamaged");
    let snap = client.metrics().expect("metrics");
    assert_fault_counters(&snap, (0, 0, 2, 0));
    assert_clean_drain(server);
}

#[test]
fn torn_persist_write_is_detected_and_rebuilt() {
    const SPEC: &str = "merge:eda-qwen+instruct-qwen@0.6";
    const KEY: &str = "merge:eda-qwen+instruct-qwen@0.6000";
    let _scope = faults::scope(104);
    faults::arm(Site::TornWrite, Some(KEY), Trigger::Once(1));

    let dir = temp_dir("torn");
    let registry = ModelRegistry::new(smoke_zoo(2025)).with_persist_dir(&dir);
    let persist_path = registry.persist_path(KEY).expect("persist path");
    let server = Server::bind(server_config(2, 32), registry).expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    // First load: trains the ingredients, merges, and persists — but the
    // injected torn write leaves half a file at the final path.
    assert_eq!(client.load(SPEC).expect("load"), KEY);
    let torn_len = std::fs::metadata(&persist_path).expect("persisted").len();

    // Evict and resolve again: the torn file must be detected (counted,
    // deleted), and the merge rebuilt from its ingredients and persisted
    // properly this time.
    assert!(client.unload(SPEC).expect("unload"));
    assert_eq!(client.load(SPEC).expect("reload"), KEY);
    let snap = client.metrics().expect("metrics");
    assert_fault_counters(&snap, (0, 0, 1, 0));
    let full_len = std::fs::metadata(&persist_path).expect("persisted").len();
    assert!(
        full_len > torn_len,
        "second persist must be complete ({full_len} vs {torn_len} bytes)"
    );

    // Third resolve round-trips through the (now valid) persisted file.
    assert!(client.unload(SPEC).expect("unload"));
    assert_eq!(client.load(SPEC).expect("load from disk"), KEY);
    let snap = client.metrics().expect("metrics");
    assert_eq!(snap.checksum_failures, 1, "clean file loads without noise");

    // And the served model is byte-identical to an out-of-band merge.
    let zoo = smoke_zoo(2025);
    let chip = zoo.model(ZooModel::Eda(Backbone::QwenTiny)).expect("chip");
    let instruct = zoo
        .model(ZooModel::Instruct(Backbone::QwenTiny))
        .expect("instruct");
    let merged = GeodesicMerge::new(0.6)
        .expect("lambda")
        .merge_pair(
            &chip.to_checkpoint().expect("ckpt"),
            &instruct.to_checkpoint().expect("ckpt"),
        )
        .expect("merge");
    let reference = TinyLm::from_checkpoint(&merged).expect("model");
    assert_healthy(addr, SPEC, &reference, "post-recovery");
    assert_clean_drain(server);
}

#[test]
fn poisoned_merge_is_reported_not_cached() {
    const SPEC: &str = "merge:eda-llama+instruct-llama@0.5";
    const KEY: &str = "merge:eda-llama+instruct-llama@0.5000";
    let _scope = faults::scope(105);
    faults::arm(Site::MergePoison, Some(KEY), Trigger::Once(1));

    let registry = ModelRegistry::new(smoke_zoo(34));
    let server = Server::bind(server_config(2, 32), registry).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let err = match client.load(SPEC) {
        Err(ServeError::Remote(w)) => w,
        other => panic!("expected a wire error, got {other:?}"),
    };
    assert_eq!(err.code, ErrorCode::Internal);
    assert!(err.detail.contains("non-finite"), "got {}", err.detail);
    let (loaded, _zoo) = client.models().expect("models");
    assert!(
        !loaded.contains(&KEY.to_string()),
        "poisoned merge must not be cached: {loaded:?}"
    );
    assert_eq!(client.metrics().expect("metrics").checksum_failures, 1);

    // The second attempt merges clean (Once(1) already fired) and serves.
    assert_eq!(client.load(SPEC).expect("clean rebuild"), KEY);
    assert_clean_drain(server);
}

#[test]
fn abandoned_sessions_are_absorbed() {
    let _scope = faults::scope(106);
    faults::arm(Site::ClientDisconnect, Some("dropper"), Trigger::Once(1));

    let registry = ModelRegistry::new(smoke_zoo(35));
    let healthy_model = random_model(7);
    registry.register("healthy", healthy_model.clone());
    registry.register("dropper", random_model(8));
    let server = Server::bind(server_config(2, 32), registry).expect("bind");
    let addr = server.local_addr();

    // Injected abandonment: the session is admitted, then its receiver is
    // dropped server-side as if the TCP peer vanished.
    let mut client = Client::connect(addr).expect("connect");
    let (code, detail) =
        remote_code(client.generate(GenerateRequest::greedy("dropper", "bye", 16)));
    assert_eq!(code, ErrorCode::Internal);
    assert!(detail.contains("disconnect"), "got {detail}");

    // A real mid-request hangup: write a generate line, slam the socket.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        let line = serde_json::to_string(&chipalign_serve::Request::Generate(
            GenerateRequest::greedy("healthy", "never read", 16),
        ))
        .expect("serialize");
        raw.write_all(line.as_bytes()).expect("write");
        raw.write_all(b"\n").expect("write");
        // Dropped here, before the response arrives.
    }

    // Both orphaned sessions still run to completion in the background —
    // the scheduler never hangs on a vanished client.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = client.metrics().expect("metrics");
        if snap.completed >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned sessions never completed: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    assert_healthy(addr, "healthy", &healthy_model, "still served");
    let snap = client.metrics().expect("metrics");
    assert_fault_counters(&snap, (0, 0, 0, 0));
    assert_eq!(snap.completed, 3, "two orphans + one healthy");
    assert_clean_drain(server);
}

#[test]
fn dead_worker_respawns_and_the_pool_keeps_serving() {
    let _scope = faults::scope(107);
    faults::arm(Site::WorkerDeath, Some("victim"), Trigger::Once(1));

    let registry = ModelRegistry::new(smoke_zoo(36));
    let healthy_model = random_model(9);
    registry.register("healthy", healthy_model.clone());
    registry.register("victim", random_model(10));
    // One worker: if respawn failed, the healthy request below would hang.
    let server = Server::bind(server_config(1, 32), registry).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let (code, detail) =
        remote_code(client.generate(GenerateRequest::greedy("victim", "doomed", 16)));
    assert_eq!(code, ErrorCode::Internal);
    assert!(detail.contains("worker died"), "got {detail}");

    assert_healthy(addr, "healthy", &healthy_model, "served by respawn");
    let snap = client.metrics().expect("metrics");
    assert_fault_counters(&snap, (0, 0, 0, 1));
    assert_clean_drain(server);
}

#[test]
fn registry_resolve_failure_is_structured_and_scoped() {
    let _scope = faults::scope(108);
    faults::arm(Site::RegistryResolve, Some("eda-qwen"), Trigger::Always);

    let registry = ModelRegistry::new(smoke_zoo(37));
    let healthy_model = random_model(11);
    registry.register("healthy", healthy_model.clone());
    let server = Server::bind(server_config(2, 32), registry).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let (code, detail) = remote_code(client.generate(GenerateRequest::greedy("eda-qwen", "q", 8)));
    assert_eq!(code, ErrorCode::Internal);
    assert!(
        detail.contains("injected registry load failure"),
        "{detail}"
    );
    let err = client.load("eda-qwen");
    assert!(
        matches!(err, Err(ServeError::Remote(ref w)) if w.code == ErrorCode::Internal),
        "load path fails the same way: {err:?}"
    );

    assert_healthy(addr, "healthy", &healthy_model, "unaffected");
    let snap = client.metrics().expect("metrics");
    assert_fault_counters(&snap, (0, 0, 0, 0));
    assert_clean_drain(server);
}

#[test]
fn retrier_rides_out_overload_against_a_live_server() {
    let _scope = faults::scope(109);

    let registry = ModelRegistry::new(smoke_zoo(38));
    let model = random_model(12);
    registry.register("canary", model.clone());
    // Capacity 1: the occupant forces `overloaded` on the probe, which the
    // retrier must absorb once the slot frees up.
    let cfg = ServerConfig {
        scheduler: SchedulerConfig {
            workers: 1,
            max_sessions: 1,
            slice_tokens: 4,
            stall_slices: 32,
            max_batch: 1,
            ..SchedulerConfig::default()
        },
        ..server_config(1, 32)
    };
    let server = Server::bind(cfg, registry).expect("bind");
    let addr = server.local_addr();
    let metrics = server.metrics();

    let occupant = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let mut req = GenerateRequest::greedy("canary", "hold", 1_500);
        req.stop_at_eos = false;
        client.generate(req)
    });
    // Wait for admission so the probe reliably collides with it.
    let started = Instant::now();
    while metrics.snapshot().prompt_tokens == 0 {
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "never admitted"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut retrier = chipalign_serve::Retrier::new(
        chipalign_serve::RetryPolicy {
            max_attempts: 200,
            base_delay_ms: 20,
            max_delay_ms: 250,
            jitter: 0.5,
        },
        9,
    );
    let mut req = GenerateRequest::greedy("canary", "after you", 24);
    req.stop_at_eos = false;
    let served = retrier.generate(addr, &req).expect("retry succeeds");
    occupant.join().expect("join").expect("occupant finishes");

    let tok = CharTokenizer::new();
    let mut ids = vec![BOS];
    ids.extend(tok.encode("after you"));
    let expected = generate(&model, &ids, &req.decode_config(10_000_000)).expect("ref");
    assert_eq!(served.text, tok.decode(&expected));
    let snap = metrics.snapshot();
    assert!(
        snap.retries_attempted >= 1,
        "server counted retry traffic: {snap:?}"
    );
    assert!(snap.rejected_overload >= 1);
    assert_clean_drain(server);
}

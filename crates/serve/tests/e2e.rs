//! End-to-end tests over a real TCP socket: a server on an ephemeral port,
//! smoke-quality zoo checkpoints, a λ=0.6 geodesic merge materialized over
//! the wire, and concurrent greedy sessions whose outputs must be
//! byte-identical to single-threaded `generate()`.

use std::time::{Duration, Instant};

use chipalign_merge::{GeodesicMerge, Merger};
use chipalign_model::ArchSpec;
use chipalign_nn::generate::generate;
use chipalign_nn::{CharTokenizer, TinyLm, BOS};
use chipalign_pipeline::zoo::{Backbone, Quality, Zoo, ZooConfig, ZooModel};
use chipalign_serve::{
    Client, ErrorCode, FinishReason, GenerateRequest, ModelRegistry, Request, Response,
    SchedulerConfig, ServeError, Server, ServerConfig,
};
use chipalign_tensor::rng::Pcg32;

fn smoke_zoo(seed: u64) -> Zoo {
    Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed,
        cache_dir: None,
    })
    .expect("zoo")
}

fn server_config(workers: usize, max_sessions: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // max_batch 4: the end-to-end suite runs with real cross-session
        // batching on — transcripts are pinned byte-identical regardless.
        scheduler: SchedulerConfig {
            workers,
            max_sessions,
            slice_tokens: 4,
            stall_slices: 32,
            max_batch: 4,
            ..SchedulerConfig::default()
        },
        max_new_tokens_cap: 10_000_000,
        default_deadline_ms: None,
        instance_tag: None,
    }
}

fn random_model(seed: u64) -> TinyLm {
    let mut arch = ArchSpec::tiny("e2e");
    arch.vocab_size = 99;
    TinyLm::new(&arch, &mut Pcg32::seed(seed)).expect("model")
}

/// The acceptance test: ≥8 concurrent greedy requests against a λ=0.6
/// merge of two zoo checkpoints, every output byte-identical to a
/// single-threaded `generate()` of the same model.
#[test]
fn concurrent_merge_sessions_match_single_threaded_generate() {
    const SPEC: &str = "merge:eda-qwen+instruct-qwen@0.6";
    let server =
        Server::bind(server_config(4, 16), ModelRegistry::new(smoke_zoo(2025))).expect("bind");
    let addr = server.local_addr();

    // Warm the registry so per-request latencies measure decoding, not
    // training: this one call trains both zoo ingredients and materializes
    // the merge.
    let mut admin = Client::connect(addr).expect("connect");
    let key = admin.load(SPEC).expect("load merge");
    assert_eq!(key, "merge:eda-qwen+instruct-qwen@0.6000");
    let (loaded, zoo_slugs) = admin.models().expect("models");
    assert!(loaded.contains(&key));
    assert!(zoo_slugs.contains(&"eda-qwen".to_string()));

    let prompts: Vec<String> = (0..8)
        .map(|i| format!("Q:what does flop {i} clock?;A:"))
        .collect();
    let handles: Vec<_> = prompts
        .iter()
        .map(|prompt| {
            let prompt = prompt.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .generate(GenerateRequest::greedy(SPEC, &prompt, 48))
                    .expect("generate")
            })
        })
        .collect();
    let served: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();

    // Reference: materialize the same merge out-of-band and decode
    // single-threaded with the exact configuration the server used.
    let zoo = smoke_zoo(2025);
    let chip = zoo.model(ZooModel::Eda(Backbone::QwenTiny)).expect("chip");
    let instruct = zoo
        .model(ZooModel::Instruct(Backbone::QwenTiny))
        .expect("instruct");
    let merged = GeodesicMerge::new(0.6)
        .expect("lambda")
        .merge_pair(
            &chip.to_checkpoint().expect("ckpt"),
            &instruct.to_checkpoint().expect("ckpt"),
        )
        .expect("merge");
    let reference_model = TinyLm::from_checkpoint(&merged).expect("model");
    let tok = CharTokenizer::new();
    for (prompt, gen) in prompts.iter().zip(&served) {
        let mut ids = vec![BOS];
        ids.extend(tok.encode(prompt));
        let cfg = GenerateRequest::greedy(SPEC, prompt, 48).decode_config(10_000_000);
        let expected = generate(&reference_model, &ids, &cfg).expect("reference");
        assert_eq!(
            gen.text,
            tok.decode(&expected),
            "served output must be byte-identical for {prompt:?}"
        );
        assert_eq!(gen.tokens, expected.len());
        assert_eq!(gen.model, key);
        assert_eq!(gen.prompt_tokens, ids.len());
        assert!(matches!(
            gen.finish,
            FinishReason::Eos | FinishReason::Length
        ));
    }

    let snap = admin.metrics().expect("metrics");
    assert!(snap.completed >= 8, "8 sessions completed, got {snap:?}");
    assert!(snap.tokens_out > 0);
    server.shutdown();
}

/// Backpressure: with capacity 1 held by a slow session, the next request
/// gets a structured `overloaded` error immediately instead of hanging,
/// and the server stays responsive.
#[test]
fn overload_is_a_structured_error_not_a_hang() {
    let registry = ModelRegistry::new(smoke_zoo(3));
    registry.register("canary", random_model(41));
    let server = Server::bind(server_config(1, 1), registry).expect("bind");
    let addr = server.local_addr();

    // Occupy the single session slot with a request that can only end by
    // deadline (huge budget, no EOS stop).
    let occupant = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let mut req = GenerateRequest::greedy("canary", "hold the slot", 5_000_000);
        req.stop_at_eos = false;
        req.deadline_ms = Some(2_000);
        client.generate(req)
    });

    // Wait until the occupant is admitted (its prompt tokens show up in
    // the metrics), then probe.
    let mut probe = Client::connect(addr).expect("connect");
    let admitted = Instant::now();
    loop {
        let snap = probe.metrics().expect("metrics");
        if snap.prompt_tokens > 0 {
            break;
        }
        assert!(
            admitted.elapsed() < Duration::from_secs(10),
            "occupant was never admitted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let rejected = probe.generate(GenerateRequest::greedy("canary", "me too", 4));
    match rejected {
        Err(ServeError::Remote(w)) => {
            assert_eq!(w.code, ErrorCode::Overloaded, "got {w:?}");
            assert!(w.detail.contains("1"), "detail names the capacity: {w:?}");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }

    // The connection is still usable and the occupant ends by deadline.
    assert_eq!(
        probe.ping().expect("ping"),
        chipalign_serve::PROTOCOL_VERSION
    );
    match occupant.join().expect("join") {
        Err(ServeError::Remote(w)) => assert_eq!(w.code, ErrorCode::DeadlineExceeded),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    let snap = probe.metrics().expect("metrics");
    assert_eq!(snap.rejected_overload, 1);
    assert_eq!(snap.deadline_exceeded, 1);
    server.shutdown();
}

/// Graceful shutdown: sessions admitted before `shutdown()` complete and
/// their clients receive full generations; the port stops accepting.
#[test]
fn shutdown_drains_admitted_sessions() {
    let registry = ModelRegistry::new(smoke_zoo(5));
    let model = random_model(17);
    registry.register("canary", model.clone());
    let server = Server::bind(server_config(2, 8), registry).expect("bind");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut req = GenerateRequest::greedy("canary", &format!("drain {i}"), 64);
                req.stop_at_eos = false;
                client.generate(req)
            })
        })
        .collect();

    // Wait for all three to be admitted before pulling the plug.
    // `prompt_tokens` is recorded *after* the admission decision, so
    // observing all 3×(BOS + "drain N") guarantees every session holds a
    // slot and will be drained rather than rejected.
    let admitted_tokens = 3 * (1 + "drain 0".len()) as u64;
    let mut probe = Client::connect(addr).expect("connect");
    let started = Instant::now();
    loop {
        let snap = probe.metrics().expect("metrics");
        if snap.prompt_tokens >= admitted_tokens {
            break;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "sessions were never admitted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(probe);
    server.shutdown();

    let tok = CharTokenizer::new();
    for (i, h) in handles.into_iter().enumerate() {
        let gen = h.join().expect("join").expect("drained generation");
        assert_eq!(gen.tokens, 64, "session {i} ran to completion");
        // Determinism holds through the drain path too.
        let mut ids = vec![BOS];
        ids.extend(tok.encode(&format!("drain {i}")));
        let mut req = GenerateRequest::greedy("canary", "x", 64);
        req.stop_at_eos = false;
        let expected = generate(&model, &ids, &req.decode_config(10_000_000)).expect("ref");
        assert_eq!(gen.text, tok.decode(&expected));
    }

    // The listener is gone: new connections fail fast.
    assert!(
        Client::connect(addr).is_err(),
        "server must stop accepting after shutdown"
    );
}

/// Unknown specs and invalid decode configs come back as structured
/// `bad_request`/`unknown_model` errors over the wire.
#[test]
fn invalid_requests_are_structured_wire_errors() {
    let server = Server::bind(server_config(1, 4), ModelRegistry::new(smoke_zoo(9))).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let unknown = client.generate(GenerateRequest::greedy("no-such-model", "hi", 4));
    assert!(
        matches!(unknown, Err(ServeError::Remote(ref w)) if w.code == ErrorCode::UnknownModel),
        "got {unknown:?}"
    );

    let mut bad = GenerateRequest::greedy("instruct-qwen", "hi", 4);
    bad.top_p = 0.0;
    let bad = client.generate(bad);
    assert!(
        matches!(bad, Err(ServeError::Remote(ref w)) if w.code == ErrorCode::BadRequest),
        "got {bad:?}"
    );

    let empty = client.generate(GenerateRequest::greedy("instruct-qwen", "", 4));
    assert!(
        matches!(empty, Err(ServeError::Remote(ref w)) if w.code == ErrorCode::BadRequest),
        "got {empty:?}"
    );

    // Raw malformed JSON gets a bad_request too, and the connection
    // survives it.
    let resp = client.request(&Request::Ping).expect("ping");
    assert!(matches!(resp, Response::Pong { .. }));
    server.shutdown();
}

/// `Arc`-cloned registry handles observe hot-swap: registering a new model
/// under an existing name changes what subsequent requests decode with.
#[test]
fn hot_swap_replaces_a_served_model_without_restart() {
    let registry = ModelRegistry::new(smoke_zoo(13));
    let first = random_model(1);
    let second = random_model(2);
    registry.register("canary", first.clone());
    let server = Server::bind(server_config(1, 4), registry).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let mut req = GenerateRequest::greedy("canary", "swap me", 24);
    req.stop_at_eos = false;
    let before = client.generate(req.clone()).expect("before");

    // Swap in a different checkpoint under the same name, no restart.
    server.registry().register("canary", second.clone());
    let after = client.generate(req.clone()).expect("after");

    // Each response must match its own model's single-threaded decode —
    // proof the swap took effect exactly between the two requests.
    let tok = CharTokenizer::new();
    let mut ids = vec![BOS];
    ids.extend(tok.encode("swap me"));
    let cfg = req.decode_config(10_000_000);
    let ref_first = generate(&first, &ids, &cfg).expect("ref");
    let ref_second = generate(&second, &ids, &cfg).expect("ref");
    assert_eq!(before.text, tok.decode(&ref_first));
    assert_eq!(after.text, tok.decode(&ref_second));

    // Unload evicts; the next request is an unknown-model error.
    assert!(client.unload("canary").expect("unload"));
    let gone = client.generate(GenerateRequest::greedy("canary", "still there?", 4));
    assert!(
        matches!(gone, Err(ServeError::Remote(ref w)) if w.code == ErrorCode::UnknownModel),
        "got {gone:?}"
    );
    server.shutdown();
}

//! Kernel-equivalence pin: greedy transcripts must be byte-identical across
//! every decode path the workspace has, using a fixed-seed model.
//!
//! Three implementations produce the "same" greedy continuation:
//!
//! 1. the served path (scheduler slices driving `StepDecoder` sessions),
//! 2. a single-threaded `generate()` (`StepDecoder` over `KvCache`, which
//!    runs on the matvec fast path),
//! 3. a from-scratch full-forward argmax loop (`TinyLm::logits` over the
//!    whole growing sequence, which runs on the batched GEMM kernels).
//!
//! Pinning all three to the same byte-for-byte transcript is what lets the
//! tensor crate swap kernel implementations (blocked tiles, lane-split
//! dots, matvec dispatch) without anyone downstream noticing: a kernel
//! change that altered accumulation order between the batched and
//! single-token paths would break this test before it shipped.

use std::sync::Arc;

use chipalign_model::ArchSpec;
use chipalign_nn::generate::{generate, GenerateConfig, StepDecoder};
use chipalign_nn::{CharTokenizer, KvPool, KvPoolConfig, TinyLm, BOS};
use chipalign_pipeline::zoo::{Quality, Zoo, ZooConfig};
use chipalign_serve::{
    Client, GenerateRequest, ModelRegistry, SchedulerConfig, Server, ServerConfig,
};
use chipalign_tensor::ops;
use chipalign_tensor::rng::Pcg32;

fn pinned_model() -> TinyLm {
    let mut arch = ArchSpec::tiny("kernel-eq");
    arch.vocab_size = 99;
    TinyLm::new(&arch, &mut Pcg32::seed(20_250_806)).expect("model")
}

/// The pinned absolute logit tolerance for int8 decode against the f32
/// oracle — the same bound the nn-crate int8 tests pin. Per-row symmetric
/// quantization of this architecture's projections stays comfortably
/// inside it; a kernel or quantizer change that drifts past it fails here
/// before it ships.
const INT8_LOGIT_TOL: f32 = 0.25;

/// The pinned model with its int8 decode sidecar attached. Quantization is
/// deterministic, so every call (and the registry's `pinned#int8` clone)
/// carries identical codes and scales.
fn pinned_int8_model() -> TinyLm {
    let mut m = pinned_model();
    m.quantize();
    m
}

fn registry_with_pinned() -> ModelRegistry {
    let zoo = Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed: 7,
        cache_dir: None,
    })
    .expect("zoo");
    let registry = ModelRegistry::new(zoo);
    registry.register("pinned", pinned_model());
    registry
}

/// Greedy continuation via repeated full forward passes: the batched-GEMM
/// decode path, no KV cache involved.
fn full_forward_greedy(model: &TinyLm, prompt: &[u32], budget: usize) -> Vec<u32> {
    let mut seq = prompt.to_vec();
    let mut new_tokens = Vec::with_capacity(budget);
    for _ in 0..budget {
        let logits = model.logits(&seq).expect("within context");
        let last = logits.row(logits.rows() - 1);
        let next = ops::argmax(last).expect("non-empty vocab") as u32;
        seq.push(next);
        new_tokens.push(next);
    }
    new_tokens
}

/// The acceptance pin: served, `generate()`, and full-forward greedy
/// transcripts are byte-identical on a fixed-seed model. Prompt + budget
/// stay within `max_seq_len` so the full-forward loop sees exactly the
/// token window the cached paths do (no slide).
#[test]
fn greedy_transcripts_identical_across_all_decode_paths() {
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 2,
                max_sessions: 8,
                slice_tokens: 4,
                stall_slices: 32,
                max_batch: 1,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: None,
        },
        registry_with_pinned(),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let model = pinned_model();
    let tok = CharTokenizer::new();
    let budget = 20;
    // BOS + 11 prompt chars + 20 new tokens = 32 = max_seq_len exactly.
    for prompt in ["kernel swap", "clock tree?", "hold margin"] {
        let mut req = GenerateRequest::greedy("pinned", prompt, budget);
        req.stop_at_eos = false;
        let served = client.generate(req.clone()).expect("generate");

        let mut ids = vec![BOS];
        ids.extend(tok.encode(prompt));
        assert!(
            ids.len() + budget <= model.arch().max_seq_len,
            "test must stay inside the context window"
        );
        let cfg = GenerateConfig {
            max_new_tokens: budget,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let stepped = generate(&model, &ids, &cfg).expect("kv-cached reference");
        let forwarded = full_forward_greedy(&model, &ids, budget);

        assert_eq!(
            stepped, forwarded,
            "KV-cached and full-forward greedy diverged for {prompt:?}"
        );
        assert_eq!(
            served.text,
            tok.decode(&stepped),
            "served transcript not byte-identical for {prompt:?}"
        );
        assert_eq!(served.tokens, budget);
    }
    server.shutdown();
}

/// The same pin through the context-window slide: longer generations force
/// `StepDecoder` to re-prefill, and the served output must still match a
/// single-threaded `generate()` byte for byte.
#[test]
fn served_greedy_identical_through_window_slide() {
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 2,
                max_sessions: 8,
                slice_tokens: 4,
                stall_slices: 64,
                max_batch: 1,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: None,
        },
        registry_with_pinned(),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let model = pinned_model();
    let tok = CharTokenizer::new();
    let budget = 64; // max_seq_len is 32: at least one slide re-prefill.
    let mut req = GenerateRequest::greedy("pinned", "slide please", budget);
    req.stop_at_eos = false;
    let served = client.generate(req).expect("generate");

    let mut ids = vec![BOS];
    ids.extend(tok.encode("slide please"));
    let cfg = GenerateConfig {
        max_new_tokens: budget,
        stop_at_eos: false,
        ..GenerateConfig::default()
    };
    let expected = generate(&model, &ids, &cfg).expect("reference");
    assert_eq!(served.text, tok.decode(&expected));
    assert_eq!(served.tokens, budget);
    server.shutdown();
}

/// The chunked-prefill + prefix-reuse pin: at every `prefill_chunk` size,
/// repeated prompts — served twice each so the second session adopts a
/// shared-prefix KV fork, with budgets long enough to slide the context
/// window and replay it through the chunked path — must produce
/// transcripts byte-identical to single-threaded `generate()`. The
/// metrics snapshot proves both mechanisms actually ran: prefill was
/// chunked and at least one session was seeded from the prefix cache.
#[test]
fn chunked_and_prefix_seeded_transcripts_identical_to_cold_prefill() {
    let model = pinned_model();
    let tok = CharTokenizer::new();
    let jobs: &[(&str, usize)] = &[("kernel swap", 20), ("slide please", 64)];
    let expected: Vec<String> = jobs
        .iter()
        .map(|&(prompt, budget)| {
            let mut ids = vec![BOS];
            ids.extend(tok.encode(prompt));
            let cfg = GenerateConfig {
                max_new_tokens: budget,
                stop_at_eos: false,
                ..GenerateConfig::default()
            };
            tok.decode(&generate(&model, &ids, &cfg).expect("reference"))
        })
        .collect();

    for prefill_chunk in [1usize, 3, 7] {
        let server = Server::bind(
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                scheduler: SchedulerConfig {
                    workers: 1,
                    max_sessions: 8,
                    slice_tokens: 4,
                    stall_slices: 64,
                    max_batch: 1,
                    prefill_chunk,
                    ..SchedulerConfig::default()
                },
                max_new_tokens_cap: 10_000_000,
                default_deadline_ms: None,
                instance_tag: None,
            },
            registry_with_pinned(),
        )
        .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // Two passes: the first prefills cold and donates its prompt
        // window; the second must hit the prefix cache — and still match.
        for pass in 0..2 {
            for (&(prompt, budget), want) in jobs.iter().zip(&expected) {
                let mut req = GenerateRequest::greedy("pinned", prompt, budget);
                req.stop_at_eos = false;
                let served = client.generate(req).expect("generate");
                assert_eq!(
                    &served.text, want,
                    "prefill_chunk={prefill_chunk}, pass={pass}, prompt {prompt:?}"
                );
            }
        }
        let snap = client.metrics().expect("metrics");
        assert!(
            snap.prefill_chunks > 0,
            "prefill_chunk={prefill_chunk}: prefill must run through the chunked path"
        );
        assert!(
            snap.prefix_hits >= 1,
            "prefill_chunk={prefill_chunk}: repeated prompts must hit the prefix cache"
        );
        assert!(
            snap.prefix_tokens_reused >= 1,
            "prefill_chunk={prefill_chunk}: a prefix hit must reuse tokens"
        );
        server.shutdown();
    }
}

/// The batched-scheduler pin: at every `max_batch`, concurrent greedy
/// sessions — including one long enough to slide the context window —
/// produce transcripts byte-identical to single-threaded `generate()`.
/// One worker forces the queue to drain in real batches, so at
/// `max_batch >= 2` the skinny-GEMM `decode_batch` path is what actually
/// produced the served bytes.
#[test]
fn batched_transcripts_identical_across_max_batch_sweep() {
    let model = pinned_model();
    let tok = CharTokenizer::new();
    // Budget 64 exceeds max_seq_len (32): that session must re-prefill
    // through at least one window slide while batched with the others.
    let jobs: &[(&str, usize)] = &[
        ("kernel swap", 20),
        ("clock tree?", 20),
        ("slide please", 64),
        ("hold margin", 12),
        ("skinny gemm", 28),
    ];
    let expected: Vec<String> = jobs
        .iter()
        .map(|&(prompt, budget)| {
            let mut ids = vec![BOS];
            ids.extend(tok.encode(prompt));
            let cfg = GenerateConfig {
                max_new_tokens: budget,
                stop_at_eos: false,
                ..GenerateConfig::default()
            };
            tok.decode(&generate(&model, &ids, &cfg).expect("reference"))
        })
        .collect();

    for max_batch in [1usize, 2, 4, 8] {
        let server = Server::bind(
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                scheduler: SchedulerConfig {
                    workers: 1,
                    max_sessions: 8,
                    slice_tokens: 4,
                    stall_slices: 64,
                    max_batch,
                    ..SchedulerConfig::default()
                },
                max_new_tokens_cap: 10_000_000,
                default_deadline_ms: None,
                instance_tag: None,
            },
            registry_with_pinned(),
        )
        .expect("bind");
        let addr = server.local_addr();
        let served: Vec<String> = std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|&(prompt, budget)| {
                    s.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let mut req = GenerateRequest::greedy("pinned", prompt, budget);
                        req.stop_at_eos = false;
                        client.generate(req).expect("generate").text
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        for ((got, want), &(prompt, _)) in served.iter().zip(&expected).zip(jobs) {
            assert_eq!(got, want, "max_batch={max_batch}, prompt {prompt:?}");
        }
        server.shutdown();
    }
}

/// The paged-pool pin: a decoder on block-based KV storage produces the
/// same bytes as the contiguous path and a single-threaded `generate()`,
/// through the context-window slide (reset + chunked replay on paged
/// storage), and returns every block to the pool when it dies.
#[test]
fn pooled_decoder_transcripts_identical_through_window_slide() {
    let model = Arc::new(pinned_model());
    let pool = KvPool::new(KvPoolConfig {
        block_tokens: 4,
        max_blocks: 64,
        ..KvPoolConfig::default()
    })
    .expect("pool");
    let tok = CharTokenizer::new();
    let mut ids = vec![BOS];
    ids.extend(tok.encode("slide please"));
    let cfg = GenerateConfig {
        max_new_tokens: 64, // max_seq_len is 32: at least one slide.
        stop_at_eos: false,
        ..GenerateConfig::default()
    };
    let expected = generate(&model, &ids, &cfg).expect("contiguous reference");

    let mut decoder = StepDecoder::new_chunked_pooled(&model, &ids, &cfg, &pool).expect("pooled");
    assert!(decoder.cache().is_paged());
    let mut got = Vec::with_capacity(cfg.max_new_tokens);
    while let Some(t) = decoder.step().expect("step") {
        got.push(t);
    }
    assert_eq!(got, expected, "paged KV storage must be bit-invisible");
    drop(decoder);
    assert_eq!(pool.blocks_in_use(), 0, "all blocks return to the pool");
}

/// The int8-vs-f32 pin: teacher-forcing the f32 greedy transcript through
/// both decode paths, every int8 logit stays within the pinned tolerance
/// of its f32 oracle, and wherever the f32 argmax margin exceeds twice the
/// tolerance the int8 argmax agrees (near-ties are legitimately allowed to
/// flip; confident tokens are not).
#[test]
fn int8_decode_tracks_the_f32_oracle_within_pinned_tolerance() {
    use chipalign_nn::KvCache;

    let f32_model = Arc::new(pinned_model());
    let int8_model = Arc::new(pinned_int8_model());
    let tok = CharTokenizer::new();
    let mut ids = vec![BOS];
    ids.extend(tok.encode("hold margin"));

    let mut oracle = KvCache::new(&f32_model);
    let mut quant = KvCache::new(&int8_model);
    let mut f32_logits = oracle.prefill(&ids).expect("f32 prefill");
    let mut int8_logits = quant.prefill(&ids).expect("int8 prefill");

    for step in 0..16 {
        let max_diff = f32_logits
            .iter()
            .zip(&int8_logits)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_diff <= INT8_LOGIT_TOL,
            "step {step}: int8 logits drifted {max_diff} > {INT8_LOGIT_TOL}"
        );
        let next = ops::argmax(&f32_logits).expect("vocab") as u32;
        // Margin gate: when the f32 winner leads by more than 2×tol, no
        // in-tolerance perturbation can flip the argmax.
        let mut sorted = f32_logits.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite logits"));
        if sorted[0] - sorted[1] > 2.0 * INT8_LOGIT_TOL {
            assert_eq!(
                ops::argmax(&int8_logits).expect("vocab") as u32,
                next,
                "step {step}: confident f32 token must survive quantization"
            );
        }
        f32_logits = oracle.decode_step(next).expect("f32 step");
        int8_logits = quant.decode_step(next).expect("int8 step");
    }
}

/// The served-int8 pin: a generation against the registry's `pinned#int8`
/// variant is byte-identical to a local single-threaded `generate()` on an
/// identically quantized model — the serving stack adds no numeric drift
/// of its own on the int8 path.
#[test]
fn served_int8_transcripts_identical_to_local_int8_decode() {
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 2,
                max_sessions: 8,
                slice_tokens: 4,
                stall_slices: 64,
                max_batch: 1,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: None,
        },
        registry_with_pinned(),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let int8_model = pinned_int8_model();
    let tok = CharTokenizer::new();
    // Budget 64 slides the 32-token context window: the replay path must
    // also be bit-identical on int8.
    for (prompt, budget) in [("kernel swap", 20), ("slide please", 64)] {
        let mut req = GenerateRequest::greedy("pinned#int8", prompt, budget);
        req.stop_at_eos = false;
        let served = client.generate(req).expect("generate");

        let mut ids = vec![BOS];
        ids.extend(tok.encode(prompt));
        let cfg = GenerateConfig {
            max_new_tokens: budget,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let local = generate(&int8_model, &ids, &cfg).expect("local int8");
        assert_eq!(
            served.text,
            tok.decode(&local),
            "served int8 transcript not byte-identical for {prompt:?}"
        );
        assert_eq!(served.model, "pinned#int8");
    }
    server.shutdown();
}

/// The served-kv8 pin: a generation against `pinned#kv8` (f32 weights,
/// int8 KV pool) is byte-identical to a local single-threaded decoder on
/// an int8 pool of the registry's default shape — block sealing is a pure
/// function of position, so the scheduler's chunked prefill, decode
/// slicing, and boundary-aligned prefix donations add no drift, through
/// the context-window slide included.
#[test]
fn served_kv8_transcripts_identical_to_local_int8_pool_decode() {
    use chipalign_nn::KvDtype;

    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 2,
                max_sessions: 8,
                slice_tokens: 4,
                stall_slices: 64,
                max_batch: 1,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: None,
        },
        registry_with_pinned(),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let model = Arc::new(pinned_model());
    // Same shape the registry hands to served `#kv8` sessions: the
    // default pool config at the int8 dtype.
    let pool = KvPool::new(KvPoolConfig {
        dtype: KvDtype::Int8,
        ..KvPoolConfig::default()
    })
    .expect("pool");
    let tok = CharTokenizer::new();
    // Budget 64 slides the 32-token context window: the reset + replay
    // re-seals blocks at their new positions identically in both runs.
    for (prompt, budget) in [("kernel swap", 20), ("slide please", 64)] {
        let mut req = GenerateRequest::greedy("pinned#kv8", prompt, budget);
        req.stop_at_eos = false;
        let served = client.generate(req).expect("generate");

        let mut ids = vec![BOS];
        ids.extend(tok.encode(prompt));
        let cfg = GenerateConfig {
            max_new_tokens: budget,
            stop_at_eos: false,
            ..GenerateConfig::default()
        };
        let mut decoder =
            StepDecoder::new_chunked_pooled(&model, &ids, &cfg, &pool).expect("pooled");
        decoder.prefill_pending(usize::MAX).expect("prefill");
        let mut local = Vec::with_capacity(budget);
        while let Some(t) = decoder.step().expect("step") {
            local.push(t);
        }
        assert_eq!(
            served.text,
            tok.decode(&local),
            "served kv8 transcript not byte-identical for {prompt:?}"
        );
        assert_eq!(served.model, "pinned#kv8");
    }

    // The int8 pool is live and visible on the admin surface.
    let snap = client.metrics().expect("metrics");
    let int8_row = snap
        .kv_pool_dtypes
        .iter()
        .find(|r| r.dtype == "int8")
        .expect("served #kv8 traffic must surface an int8 pool row");
    assert_eq!(
        int8_row.blocks_in_use + int8_row.blocks_free,
        8192,
        "default pool capacity at the int8 dtype"
    );
    assert_eq!(
        snap.kv_bytes_in_use,
        snap.kv_pool_dtypes
            .iter()
            .map(|r| r.bytes_in_use)
            .sum::<u64>(),
        "total bytes gauge sums the per-dtype rows"
    );
    server.shutdown();
}

/// The batched-int8 pin: concurrent int8 sessions forced through the
/// skinny-GEMM `decode_batch` path produce transcripts byte-identical to
/// single-threaded int8 `generate()` — batching stays bit-invisible at
/// int8 exactly as it is at f32.
#[test]
fn batched_int8_transcripts_identical_to_single_threaded_int8() {
    let int8_model = pinned_int8_model();
    let tok = CharTokenizer::new();
    let jobs: &[(&str, usize)] = &[
        ("kernel swap", 20),
        ("clock tree?", 20),
        ("slide please", 64),
        ("hold margin", 12),
    ];
    let expected: Vec<String> = jobs
        .iter()
        .map(|&(prompt, budget)| {
            let mut ids = vec![BOS];
            ids.extend(tok.encode(prompt));
            let cfg = GenerateConfig {
                max_new_tokens: budget,
                stop_at_eos: false,
                ..GenerateConfig::default()
            };
            tok.decode(&generate(&int8_model, &ids, &cfg).expect("reference"))
        })
        .collect();

    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 1,
                max_sessions: 8,
                slice_tokens: 4,
                stall_slices: 64,
                max_batch: 4,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: None,
        },
        registry_with_pinned(),
    )
    .expect("bind");
    let addr = server.local_addr();
    let served: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(prompt, budget)| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut req = GenerateRequest::greedy("pinned#int8", prompt, budget);
                    req.stop_at_eos = false;
                    client.generate(req).expect("generate").text
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for ((got, want), &(prompt, _)) in served.iter().zip(&expected).zip(jobs) {
        assert_eq!(got, want, "batched int8, prompt {prompt:?}");
    }
    server.shutdown();
}

/// The admin-surface pin: loading `pinned#int8` surfaces an int8 detail
/// row whose bytes beat the f32 row, the weights gauge equals the sum of
/// every row, and the snapshot names the kernel backend in use.
#[test]
fn int8_registry_surfaces_dtype_weight_gauge_and_backend() {
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig::default(),
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: None,
        },
        registry_with_pinned(),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let key = client.load("pinned#int8").expect("load");
    assert_eq!(key, "pinned#int8");

    let details = client.models_detailed().expect("models");
    let row = |m: &str| {
        details
            .iter()
            .find(|d| d.model == m)
            .unwrap_or_else(|| panic!("missing detail row for {m}"))
            .clone()
    };
    let f32_row = row("pinned");
    let int8_row = row("pinned#int8");
    assert_eq!(f32_row.dtype, "f32");
    assert_eq!(int8_row.dtype, "int8");
    assert!(
        int8_row.weights_bytes < f32_row.weights_bytes / 2,
        "int8 footprint ({}) must be under half the f32 footprint ({})",
        int8_row.weights_bytes,
        f32_row.weights_bytes
    );

    let snap = client.metrics().expect("metrics");
    let total: u64 = details.iter().map(|d| d.weights_bytes).sum();
    assert_eq!(snap.weights_bytes, total, "gauge must equal the row sum");
    assert!(
        !snap.simd_backend.is_empty(),
        "snapshot must name the selected kernel backend"
    );
    server.shutdown();
}

/// The wire-path pin: served sessions decode on the registry's per-model
/// paged pool, and the pool's gauges surface in the metrics snapshot —
/// after a generation the donated prefix snapshot still holds blocks, and
/// in-use plus free always equals the configured capacity.
#[test]
fn served_sessions_decode_on_the_paged_pool() {
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig::default(),
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: None,
        },
        registry_with_pinned(),
    )
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut req = GenerateRequest::greedy("pinned", "kernel swap", 8);
    req.stop_at_eos = false;
    client.generate(req).expect("generate");

    let snap = client.metrics().expect("metrics");
    assert!(
        snap.kv_blocks_in_use >= 1,
        "the donated prefix snapshot must hold at least one pool block"
    );
    let capacity = KvPoolConfig::default().max_blocks as u64;
    assert_eq!(
        snap.kv_blocks_in_use + snap.kv_blocks_free,
        capacity,
        "pool gauges must account for every block"
    );
    server.shutdown();
}

/// A registry that additionally carries `pinned-half`: the pinned model
/// truncated to its first layer, the cheap-draft shape the speculative
/// pins exercise alongside the identical-weights draft.
fn registry_with_pinned_and_half() -> ModelRegistry {
    let registry = registry_with_pinned();
    registry.register(
        "pinned-half",
        pinned_model().truncate_layers(1).expect("prefix model"),
    );
    registry
}

fn spec_server(max_batch: usize) -> Server {
    Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 1,
                max_sessions: 8,
                slice_tokens: 4,
                stall_slices: 64,
                max_batch,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 10_000_000,
            default_deadline_ms: None,
            instance_tag: None,
        },
        registry_with_pinned_and_half(),
    )
    .expect("bind")
}

/// The speculative pin: sessions addressed as `spec:pinned|<draft>@k` —
/// with the identical-weights draft and the truncated cheap draft, at
/// several draft lengths, through the context-window slide — are
/// byte-identical to a single-threaded `generate()` on the target, and the
/// metrics prove speculation actually ran (draft tokens proposed and
/// accepted, with the identical draft accepting every proposal while no
/// slide has reset its window).
#[test]
fn speculative_transcripts_identical_to_plain_greedy() {
    let model = pinned_model();
    let tok = CharTokenizer::new();
    // Budget 64 slides the 32-token window: after the slide the draft
    // resyncs on a shorter context and may legitimately disagree, so the
    // pin is byte-identity plus accepted > 0, not total acceptance.
    let jobs: &[(&str, usize)] = &[("kernel swap", 20), ("slide please", 64)];
    let expected: Vec<String> = jobs
        .iter()
        .map(|&(prompt, budget)| {
            let mut ids = vec![BOS];
            ids.extend(tok.encode(prompt));
            let cfg = GenerateConfig {
                max_new_tokens: budget,
                stop_at_eos: false,
                ..GenerateConfig::default()
            };
            tok.decode(&generate(&model, &ids, &cfg).expect("reference"))
        })
        .collect();

    for spec in ["spec:pinned|pinned@4", "spec:pinned|pinned-half@3"] {
        let server = spec_server(1);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for (&(prompt, budget), want) in jobs.iter().zip(&expected) {
            let mut req = GenerateRequest::greedy(spec, prompt, budget);
            req.stop_at_eos = false;
            let served = client.generate(req).expect("generate");
            assert_eq!(
                &served.text, want,
                "speculative transcript not byte-identical for {spec}, {prompt:?}"
            );
            assert_eq!(served.tokens, budget);
        }
        let snap = client.metrics().expect("metrics");
        assert!(
            snap.draft_tokens_proposed > 0,
            "{spec}: speculation must actually propose draft tokens"
        );
        assert!(
            snap.accepted_draft_tokens > 0,
            "{spec}: the target must accept at least one draft token"
        );
        assert!(
            snap.accepted_draft_tokens <= snap.draft_tokens_proposed,
            "{spec}: acceptance cannot exceed proposals"
        );
        server.shutdown();
    }
}

/// The batched-speculation pin: speculative and plain sessions share one
/// batched scheduler (spec members step individually, plain members ride
/// the joint `decode_batch`), and every transcript — window slides
/// included — stays byte-identical to single-threaded `generate()`.
#[test]
fn batched_speculative_and_plain_transcripts_identical() {
    let model = pinned_model();
    let tok = CharTokenizer::new();
    let jobs: &[(&str, &str, usize)] = &[
        ("spec:pinned|pinned@4", "kernel swap", 20),
        ("pinned", "clock tree?", 20),
        ("spec:pinned|pinned-half@2", "slide please", 64),
        ("pinned", "hold margin", 12),
        ("spec:pinned|pinned@3", "skinny gemm", 28),
    ];
    let expected: Vec<String> = jobs
        .iter()
        .map(|&(_, prompt, budget)| {
            let mut ids = vec![BOS];
            ids.extend(tok.encode(prompt));
            let cfg = GenerateConfig {
                max_new_tokens: budget,
                stop_at_eos: false,
                ..GenerateConfig::default()
            };
            tok.decode(&generate(&model, &ids, &cfg).expect("reference"))
        })
        .collect();

    let server = spec_server(4);
    let addr = server.local_addr();
    let served: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(spec, prompt, budget)| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut req = GenerateRequest::greedy(spec, prompt, budget);
                    req.stop_at_eos = false;
                    client.generate(req).expect("generate").text
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for ((got, want), &(spec, prompt, _)) in served.iter().zip(&expected).zip(jobs) {
        assert_eq!(got, want, "batched {spec}, prompt {prompt:?}");
    }
    server.shutdown();
}

/// The quantized-target speculation pin: speculative sessions whose target
/// segment carries `#int8` (quantized weights) or `#kv8` (int8 paged KV)
/// are byte-identical to plain served sessions against the same target —
/// the verify path quantizes KV blocks at the same positions the
/// sequential path does, and an f32 draft never leaks into the target's
/// bytes.
#[test]
fn speculative_quantized_targets_match_their_plain_served_counterparts() {
    // BOS + 11 prompt chars + 18 new tokens = 30 < max_seq_len (32): the
    // quantized sessions stay clear of the window slide, so the sealed
    // int8 blocks both runs produce sit at identical positions;
    // byte-identity through slides is pinned on the f32 paths above.
    //
    // Guaranteed acceptance needs a draft whose logits are bit-identical
    // to the target's: `pinned#int8` drafting for `pinned#int8` qualifies
    // (same quantized weights; the target's paged f32 KV equals the
    // draft's contiguous f32 KV bitwise). A `#kv8` target attends over
    // int8 KV while every draft runs f32 KV, so acceptance there is
    // likely but not provable — those jobs pin byte-identity only.
    let jobs: &[(&str, &str, &str, usize, bool)] = &[
        (
            "spec:pinned#int8|pinned#int8@4",
            "pinned#int8",
            "kernel swap",
            18,
            true,
        ),
        (
            "spec:pinned#kv8|pinned@4",
            "pinned#kv8",
            "hold margin",
            18,
            false,
        ),
        (
            "spec:pinned#kv8|pinned-half@3",
            "pinned#kv8",
            "clock tree?",
            18,
            false,
        ),
    ];
    for &(spec, plain, prompt, budget, must_accept) in jobs {
        let server = spec_server(1);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let mut req = GenerateRequest::greedy(plain, prompt, budget);
        req.stop_at_eos = false;
        let want = client.generate(req).expect("plain generate").text;

        let mut req = GenerateRequest::greedy(spec, prompt, budget);
        req.stop_at_eos = false;
        let served = client.generate(req).expect("spec generate");
        assert_eq!(
            served.text, want,
            "speculative transcript diverged from plain serving for {spec}"
        );
        let snap = client.metrics().expect("metrics");
        assert!(
            snap.draft_tokens_proposed > 0,
            "{spec}: speculation must actually run"
        );
        if must_accept {
            assert!(
                snap.accepted_draft_tokens > 0,
                "{spec}: an identical draft must have tokens accepted"
            );
        }
        server.shutdown();
    }
}

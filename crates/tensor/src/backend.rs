//! Pluggable dense-kernel backends with one-time runtime selection.
//!
//! Every hot dot-product-shaped kernel in [`crate::Matrix`] (and the int8
//! kernels in [`crate::QuantizedMatrix`]) routes through one process-wide
//! [`KernelBackend`], selected once at first use:
//!
//! * [`ScalarBackend`] — the naive single-accumulator loops; the
//!   differential-testing oracle, never fast.
//! * [`BlockedBackend`] — the autovectorized lane-split/column-tiled kernels
//!   this workspace shipped with (see [`crate::tune`]); the portable fast
//!   tier.
//! * [`SimdBackend`] — explicit `std::arch` x86_64 AVX2/FMA intrinsics,
//!   used only when runtime feature detection confirms the CPU supports
//!   them; on any other machine its methods fall back to the blocked
//!   kernels, so the type exists (and benches) everywhere.
//!
//! Selection happens exactly once per process via [`active`]: the
//! `CHIPALIGN_BACKEND` environment variable (`scalar` | `blocked` | `simd`)
//! wins when set to a known value, otherwise AVX2+FMA machines get the SIMD
//! tier and everything else gets the blocked tier. Pinning the choice for
//! the whole process is what keeps the serving stack's bit-identity
//! invariants intact: batched decode, chunked prefill, and per-session
//! decode all accumulate in the *same* backend's order, so transcripts
//! never depend on which code path computed a given dot product.
//!
//! Backends can also be driven directly (e.g. `bench_kernels` times all
//! three in one process via [`all`]) — direct calls bypass the global
//! selection entirely.

use std::sync::OnceLock;

use crate::tune;

/// The kernel primitives a backend must provide. Implementations differ in
/// instruction selection, not semantics: all compute the same products to
/// within floating-point reassociation (bounded at 1e-4 relative by the
/// backend-equivalence proptests).
pub trait KernelBackend: Send + Sync {
    /// Short stable identifier (`"scalar"`, `"blocked"`, `"simd"`), used in
    /// logs, metrics, and bench labels.
    fn name(&self) -> &'static str;

    /// Dense dot product of two equal-length `f32` slices.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// One output row of `A·B`: `out_row = a_row · b`, with `b` a
    /// `k × n` row-major block (`k = a_row.len()`).
    fn gemm_row(&self, a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]);

    /// Dot of a per-row-scaled int8 weight row against an `f32` activation
    /// vector: `scale · Σ wᵢ·xᵢ` with the `i8` weights widened in-register.
    fn dot_q8(&self, w_row: &[i8], scale: f32, x: &[f32]) -> f32;

    /// Scaled int8 accumulate: `out[i] += weight · scale · codes[i]`, the
    /// context-accumulation half of quantized attention (the score half is
    /// [`KernelBackend::dot_q8`]). `weight` is the softmax probability for
    /// one KV row; `scale · codes[i]` dequantizes that row in-register, so
    /// the V stream moves 1 byte per element instead of 4.
    fn axpy_q8(&self, weight: f32, codes: &[i8], scale: f32, out: &mut [f32]);
}

/// Naive reference backend: single-accumulator loops in source order.
#[derive(Debug, Clone, Copy)]
pub struct ScalarBackend;

/// The autovectorized blocked backend: [`tune::DOT_LANES`]-way lane-split
/// reductions and [`tune::GEMM_COL_TILE`]-wide register-tiled GEMM rows.
#[derive(Debug, Clone, Copy)]
pub struct BlockedBackend;

/// Explicit AVX2/FMA backend (x86_64 only); falls back to
/// [`BlockedBackend`]'s kernels per call when the CPU (or architecture)
/// lacks the features, so it is safe to invoke unconditionally.
#[derive(Debug, Clone, Copy)]
pub struct SimdBackend;

/// The scalar backend singleton.
pub static SCALAR: ScalarBackend = ScalarBackend;
/// The blocked backend singleton.
pub static BLOCKED: BlockedBackend = BlockedBackend;
/// The explicit-SIMD backend singleton.
pub static SIMD: SimdBackend = SimdBackend;

impl KernelBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    fn gemm_row(&self, a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
        for (j, o) in out_row.iter_mut().enumerate().take(n) {
            let mut acc = 0.0f32;
            for (kk, &a) in a_row.iter().enumerate() {
                acc += a * b[kk * n + j];
            }
            *o = acc;
        }
    }

    fn dot_q8(&self, w_row: &[i8], scale: f32, x: &[f32]) -> f32 {
        scale
            * w_row
                .iter()
                .zip(x)
                .map(|(&q, &v)| f32::from(q) * v)
                .sum::<f32>()
    }

    fn axpy_q8(&self, weight: f32, codes: &[i8], scale: f32, out: &mut [f32]) {
        let c = weight * scale;
        for (o, &q) in out.iter_mut().zip(codes) {
            *o += c * f32::from(q);
        }
    }
}

impl KernelBackend for BlockedBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        dot_lanes_blocked(a, b)
    }

    fn gemm_row(&self, a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
        gemm_row_blocked(a_row, b, n, 0, out_row);
    }

    fn dot_q8(&self, w_row: &[i8], scale: f32, x: &[f32]) -> f32 {
        dot_q8_lanes_blocked(w_row, scale, x)
    }

    fn axpy_q8(&self, weight: f32, codes: &[i8], scale: f32, out: &mut [f32]) {
        axpy_q8_blocked(weight, codes, scale, out);
    }
}

impl KernelBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        #[cfg(target_arch = "x86_64")]
        if let Some(v) = x86::dot(a, b) {
            return v;
        }
        dot_lanes_blocked(a, b)
    }

    fn gemm_row(&self, a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if x86::gemm_row(a_row, b, n, out_row) {
            return;
        }
        gemm_row_blocked(a_row, b, n, 0, out_row);
    }

    fn dot_q8(&self, w_row: &[i8], scale: f32, x: &[f32]) -> f32 {
        #[cfg(target_arch = "x86_64")]
        if let Some(v) = x86::dot_q8(w_row, scale, x) {
            return v;
        }
        dot_q8_lanes_blocked(w_row, scale, x)
    }

    fn axpy_q8(&self, weight: f32, codes: &[i8], scale: f32, out: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if x86::axpy_q8(weight, codes, scale, out) {
            return;
        }
        axpy_q8_blocked(weight, codes, scale, out);
    }
}

/// Whether the explicit-SIMD tier can actually run AVX2/FMA code on this
/// machine. Always `false` off x86_64.
#[must_use]
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

static ACTIVE: OnceLock<&'static dyn KernelBackend> = OnceLock::new();

/// The process-wide backend every routed kernel uses, selected on first
/// call and never changed afterwards (see the module docs for why).
#[must_use]
pub fn active() -> &'static dyn KernelBackend {
    *ACTIVE.get_or_init(|| match std::env::var("CHIPALIGN_BACKEND").as_deref() {
        Ok("scalar") => &SCALAR,
        Ok("blocked") => &BLOCKED,
        Ok("simd") => &SIMD,
        _ => {
            if simd_supported() {
                &SIMD
            } else {
                &BLOCKED
            }
        }
    })
}

/// Name of the process-wide active backend (for startup logs and metrics).
/// An explicit `CHIPALIGN_BACKEND=simd` on hardware without AVX2/FMA still
/// runs the blocked fallback and is reported as `"simd(blocked-fallback)"`
/// so dashboards never claim vector throughput that is not happening.
#[must_use]
pub fn active_name() -> &'static str {
    let b = active();
    if b.name() == "simd" && !simd_supported() {
        "simd(blocked-fallback)"
    } else {
        b.name()
    }
}

/// All three backends, for code (benches, differential tests) that sweeps
/// the full matrix in one process instead of using the global selection.
#[must_use]
pub fn all() -> [&'static dyn KernelBackend; 3] {
    [&SCALAR, &BLOCKED, &SIMD]
}

/// Lane-split dot product: [`tune::DOT_LANES`] independent partial sums so
/// the reduction has no serial floating-point dependency chain and
/// autovectorises.
pub(crate) fn dot_lanes_blocked(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; tune::DOT_LANES];
    let mut a_chunks = a.chunks_exact(tune::DOT_LANES);
    let mut b_chunks = b.chunks_exact(tune::DOT_LANES);
    for (ca, cb) in (&mut a_chunks).zip(&mut b_chunks) {
        for ((lane, &x), &y) in lanes.iter_mut().zip(ca).zip(cb) {
            *lane += x * y;
        }
    }
    let tail: f32 = a_chunks
        .remainder()
        .iter()
        .zip(b_chunks.remainder())
        .map(|(&x, &y)| x * y)
        .sum();
    lanes.iter().sum::<f32>() + tail
}

/// Lane-split int8×f32 dot: the [`dot_lanes_blocked`] recipe with the `i8`
/// weights widened to `f32` in the inner loop, scaled once at the end.
pub(crate) fn dot_q8_lanes_blocked(w: &[i8], scale: f32, x: &[f32]) -> f32 {
    let mut lanes = [0.0f32; tune::DOT_LANES];
    let mut w_chunks = w.chunks_exact(tune::DOT_LANES);
    let mut x_chunks = x.chunks_exact(tune::DOT_LANES);
    for (cw, cx) in (&mut w_chunks).zip(&mut x_chunks) {
        for ((lane, &q), &v) in lanes.iter_mut().zip(cw).zip(cx) {
            *lane += f32::from(q) * v;
        }
    }
    let tail: f32 = w_chunks
        .remainder()
        .iter()
        .zip(x_chunks.remainder())
        .map(|(&q, &v)| f32::from(q) * v)
        .sum();
    scale * (lanes.iter().sum::<f32>() + tail)
}

/// Scaled int8 accumulate, portable tier: the combined factor
/// `weight · scale` is hoisted once and the widen-multiply-add loop has no
/// cross-iteration dependency, so it autovectorises cleanly.
pub(crate) fn axpy_q8_blocked(weight: f32, codes: &[i8], scale: f32, out: &mut [f32]) {
    let c = weight * scale;
    for (o, &q) in out.iter_mut().zip(codes) {
        *o += c * f32::from(q);
    }
}

/// Columns `[j0, n)` of one output row of `A·B`, swept in
/// [`tune::GEMM_COL_TILE`]-wide tiles whose partial sums live in a stack
/// array the compiler keeps in vector registers. `j0 = 0` is the full
/// blocked GEMM row; the SIMD kernel reuses the tail (`j0 = 16·⌊n/16⌋`)
/// for its ragged trailing columns.
pub(crate) fn gemm_row_blocked(a_row: &[f32], b: &[f32], n: usize, j0: usize, out_row: &mut [f32]) {
    let mut j0 = j0;
    while j0 < n {
        let w = tune::GEMM_COL_TILE.min(n - j0);
        let mut acc = [0.0f32; tune::GEMM_COL_TILE];
        for (kk, &a) in a_row.iter().enumerate() {
            let b_strip = &b[kk * n + j0..kk * n + j0 + w];
            for (ac, &bv) in acc.iter_mut().zip(b_strip) {
                *ac += a * bv;
            }
        }
        out_row[j0..j0 + w].copy_from_slice(&acc[..w]);
        j0 += w;
    }
}

/// The `std::arch` AVX2/FMA kernels, behind safe wrappers that return
/// `None`/`false` when the CPU lacks the features. This is the only module
/// in the crate allowed to contain `unsafe` (the crate-level gate is
/// `#![deny(unsafe_code)]`); every intrinsic call is reachable only after
/// [`simd_supported`] has confirmed AVX2+FMA at runtime, and the
/// raw-pointer loops never read past the slice lengths they check.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use std::arch::x86_64::{
        __m128i, __m256, _mm256_add_ps, _mm256_cvtepi32_ps, _mm256_cvtepi8_epi32, _mm256_fmadd_ps,
        _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps, _mm_loadl_epi64,
    };

    /// Dispatches to the AVX2 dot when supported.
    pub(super) fn dot(a: &[f32], b: &[f32]) -> Option<f32> {
        if !super::simd_supported() {
            return None;
        }
        // SAFETY: AVX2+FMA presence was verified just above.
        Some(unsafe { dot_avx2(a, b) })
    }

    /// Dispatches to the AVX2 GEMM row when supported; `false` means the
    /// caller must run the portable kernel instead.
    pub(super) fn gemm_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) -> bool {
        if !super::simd_supported() {
            return false;
        }
        // SAFETY: AVX2+FMA presence was verified just above.
        unsafe { gemm_row_avx2(a_row, b, n, out_row) };
        true
    }

    /// Dispatches to the AVX2 int8×f32 dot when supported.
    pub(super) fn dot_q8(w: &[i8], scale: f32, x: &[f32]) -> Option<f32> {
        if !super::simd_supported() {
            return None;
        }
        // SAFETY: AVX2+FMA presence was verified just above.
        Some(unsafe { dot_q8_avx2(w, scale, x) })
    }

    /// Dispatches to the AVX2 scaled int8 accumulate when supported;
    /// `false` means the caller must run the portable kernel instead.
    pub(super) fn axpy_q8(weight: f32, codes: &[i8], scale: f32, out: &mut [f32]) -> bool {
        if !super::simd_supported() {
            return false;
        }
        // SAFETY: AVX2+FMA presence was verified just above.
        unsafe { axpy_q8_avx2(weight, codes, scale, out) };
        true
    }

    /// Sums the 8 lanes of a `__m256` through a stack spill (the reduction
    /// runs once per dot, off the critical path, so shuffle chains would
    /// buy nothing).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let mut tmp = [0.0f32; 8];
        _mm256_storeu_ps(tmp.as_mut_ptr(), v);
        tmp.iter().sum()
    }

    /// AVX2/FMA dot product: [`crate::tune::SIMD_DOT_UNROLL`] independent
    /// 8-lane FMA accumulators (32 elements per iteration), an 8-wide
    /// cleanup loop, then a scalar tail.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; `a` and `b` must be
    /// equal-length.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 32 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 16)),
                _mm256_loadu_ps(pb.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 24)),
                _mm256_loadu_ps(pb.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            i += 8;
        }
        let folded = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        let mut total = hsum256(folded);
        while i < n {
            total += *pa.add(i) * *pb.add(i);
            i += 1;
        }
        total
    }

    /// AVX2/FMA int8×f32 dot: 8 weights at a time are widened
    /// `i8 → i32 → f32` in-register (`vpmovsxbd` + `vcvtdq2ps`) and FMA'd
    /// against the activations; the per-row scale is applied once at the
    /// end. This is the decode kernel that moves 1 byte per weight instead
    /// of 4.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; `w` and `x` must be
    /// equal-length.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_q8_avx2(w: &[i8], scale: f32, x: &[f32]) -> f32 {
        debug_assert_eq!(w.len(), x.len());
        let n = w.len();
        let pw = w.as_ptr();
        let px = x.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= n {
            let q8 = _mm_loadl_epi64(pw.add(i).cast::<__m128i>());
            let wf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
            acc = _mm256_fmadd_ps(wf, _mm256_loadu_ps(px.add(i)), acc);
            i += 8;
        }
        let mut total = hsum256(acc);
        while i < n {
            total += f32::from(*pw.add(i)) * *px.add(i);
            i += 1;
        }
        scale * total
    }

    /// AVX2/FMA scaled int8 accumulate: 8 codes at a time are widened
    /// `i8 → i32 → f32` in-register and FMA'd against the broadcast
    /// combined factor `weight · scale` into the output, with a scalar
    /// tail. This is the quantized-attention context kernel: the V rows
    /// stream 1 byte per element.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; `out` must be at least
    /// as long as `codes`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn axpy_q8_avx2(weight: f32, codes: &[i8], scale: f32, out: &mut [f32]) {
        debug_assert!(out.len() >= codes.len());
        let n = codes.len();
        let pq = codes.as_ptr();
        let po = out.as_mut_ptr();
        let c = weight * scale;
        let cv = _mm256_set1_ps(c);
        let mut i = 0usize;
        while i + 8 <= n {
            let q8 = _mm_loadl_epi64(pq.add(i).cast::<__m128i>());
            let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
            let acc = _mm256_fmadd_ps(cv, qf, _mm256_loadu_ps(po.add(i)));
            _mm256_storeu_ps(po.add(i), acc);
            i += 8;
        }
        while i < n {
            *po.add(i) += c * f32::from(*pq.add(i));
            i += 1;
        }
    }

    /// AVX2/FMA GEMM row: 16-wide column tiles held in two `ymm`
    /// accumulators across the whole `k` loop (one broadcast + two FMAs
    /// per weight), with the ragged trailing columns delegated to the
    /// blocked scalar tile.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; `b` must be
    /// `a_row.len() × n` row-major and `out_row` at least `n` long.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn gemm_row_avx2(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
        debug_assert!(b.len() >= a_row.len() * n);
        debug_assert!(out_row.len() >= n);
        let pb = b.as_ptr();
        let po = out_row.as_mut_ptr();
        let mut j = 0usize;
        while j + 16 <= n {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for (kk, &a) in a_row.iter().enumerate() {
                let av = _mm256_set1_ps(a);
                let strip = pb.add(kk * n + j);
                acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(strip), acc0);
                acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(strip.add(8)), acc1);
            }
            _mm256_storeu_ps(po.add(j), acc0);
            _mm256_storeu_ps(po.add(j + 8), acc1);
            j += 16;
        }
        if j < n {
            super::gemm_row_blocked(a_row, b, n, j, out_row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn randv(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Pcg32::seed(seed);
        (0..n).map(|_| rng.normal()).collect()
    }

    #[test]
    fn names_are_distinct_and_stable() {
        let names: Vec<&str> = all().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["scalar", "blocked", "simd"]);
    }

    #[test]
    fn active_is_sticky_and_listed() {
        let first = active().name();
        let second = active().name();
        assert_eq!(first, second, "selection must be one-time");
        assert!(all().iter().any(|b| b.name() == first));
        assert!(active_name().starts_with(first));
    }

    #[test]
    fn dots_agree_across_backends_on_awkward_lengths() {
        // 1, 7, 8, 31, 33: scalar tails, exactly one lane chunk, and the
        // SIMD kernel's 32-wide main loop boundary on both sides.
        for n in [1usize, 7, 8, 31, 32, 33, 100] {
            let a = randv(n, 1 + n as u64);
            let b = randv(n, 100 + n as u64);
            let reference = SCALAR.dot(&a, &b);
            for backend in all() {
                let got = backend.dot(&a, &b);
                let tol = 1e-4 * reference.abs().max(1.0);
                assert!(
                    (got - reference).abs() <= tol,
                    "{} dot drifted at n={n}: {got} vs {reference}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn gemm_rows_agree_across_backends() {
        // n straddles the 16-wide tile boundary; k straddles the lane
        // width.
        for (k, n) in [(5usize, 3usize), (9, 16), (17, 19), (33, 40)] {
            let a_row = randv(k, 7);
            let b = randv(k * n, 8);
            let mut reference = vec![0.0f32; n];
            SCALAR.gemm_row(&a_row, &b, n, &mut reference);
            for backend in all() {
                let mut got = vec![0.0f32; n];
                backend.gemm_row(&a_row, &b, n, &mut got);
                for (g, r) in got.iter().zip(&reference) {
                    assert!(
                        (g - r).abs() <= 1e-4 * r.abs().max(1.0),
                        "{} gemm_row drifted at k={k} n={n}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn q8_dots_agree_across_backends() {
        for n in [1usize, 8, 13, 40] {
            let w: Vec<i8> = (0..n)
                .map(|i| ((i as i32 * 37) % 255 - 127) as i8)
                .collect();
            let x = randv(n, 5 + n as u64);
            let scale = 0.037f32;
            let reference = SCALAR.dot_q8(&w, scale, &x);
            for backend in all() {
                let got = backend.dot_q8(&w, scale, &x);
                assert!(
                    (got - reference).abs() <= 1e-4 * reference.abs().max(1.0),
                    "{} dot_q8 drifted at n={n}: {got} vs {reference}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn q8_axpys_agree_across_backends() {
        // Same awkward lengths as the dot tests: scalar-tail-only, exactly
        // one 8-wide chunk, and a ragged tail past the SIMD main loop.
        for n in [1usize, 8, 13, 40] {
            let codes: Vec<i8> = (0..n)
                .map(|i| ((i as i32 * 53) % 255 - 127) as i8)
                .collect();
            let scale = 0.021f32;
            let weight = 0.63f32;
            let base = randv(n, 9 + n as u64);
            let mut reference = base.clone();
            SCALAR.axpy_q8(weight, &codes, scale, &mut reference);
            for backend in all() {
                let mut got = base.clone();
                backend.axpy_q8(weight, &codes, scale, &mut got);
                for (g, r) in got.iter().zip(&reference) {
                    assert!(
                        (g - r).abs() <= 1e-4 * r.abs().max(1.0),
                        "{} axpy_q8 drifted at n={n}: {g} vs {r}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn simd_backend_is_safe_everywhere() {
        // Whether or not AVX2 exists here, the SIMD tier must answer (via
        // intrinsics or the blocked fallback).
        let a = randv(50, 2);
        let b = randv(50, 3);
        let got = SIMD.dot(&a, &b);
        assert!((got - SCALAR.dot(&a, &b)).abs() <= 1e-3);
    }
}

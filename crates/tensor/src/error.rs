use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations.
///
/// Every fallible public function in this crate returns `Result<_,
/// TensorError>`; the variants carry enough shape information to diagnose a
/// mis-sized operand without a debugger.
///
/// # Example
///
/// ```
/// use chipalign_tensor::{Matrix, TensorError};
///
/// let a = Matrix::zeros(2, 3);
/// let b = Matrix::zeros(4, 5);
/// match a.matmul(&b) {
///     Err(TensorError::ShapeMismatch { .. }) => {}
///     _ => panic!("2x3 times 4x5 must not type-check at runtime"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A constructor was given a buffer whose length does not equal
    /// `rows * cols`.
    BadBuffer {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// An index was outside the matrix bounds.
    OutOfBounds {
        /// The offending `(row, col)` index.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// An operation that requires a non-empty matrix was given an empty one.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::BadBuffer { rows, cols, len } => write!(
                f,
                "buffer of length {len} cannot back a {rows}x{cols} matrix"
            ),
            TensorError::OutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            TensorError::Empty { op } => {
                write!(f, "operation {op} requires a non-empty matrix")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            err.to_string(),
            "shape mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_bad_buffer() {
        let err = TensorError::BadBuffer {
            rows: 2,
            cols: 2,
            len: 3,
        };
        assert_eq!(
            err.to_string(),
            "buffer of length 3 cannot back a 2x2 matrix"
        );
    }

    #[test]
    fn display_out_of_bounds() {
        let err = TensorError::OutOfBounds {
            index: (5, 0),
            shape: (2, 2),
        };
        assert_eq!(err.to_string(), "index (5, 0) out of bounds for 2x2 matrix");
    }

    #[test]
    fn display_empty() {
        let err = TensorError::Empty { op: "argmax" };
        assert_eq!(
            err.to_string(),
            "operation argmax requires a non-empty matrix"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}

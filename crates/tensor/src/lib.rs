//! Dense tensor math substrate for the ChipAlign reproduction.
//!
//! This crate provides the low-level numerical machinery that every other
//! crate in the workspace builds on:
//!
//! * [`Matrix`] — a row-major, heap-allocated `f32` matrix with the linear
//!   algebra needed by a transformer forward/backward pass and by weight-space
//!   model merging (Frobenius norms, inner products, `axpy`, matmul).
//! * [`rng`] — a tiny, fully deterministic pseudo-random number generator
//!   ([`rng::Pcg32`]) plus normal/uniform sampling helpers, so that every
//!   experiment in the reproduction is bit-reproducible across runs and
//!   platforms without pulling an RNG dependency into the numerics core.
//! * [`stats`] — scalar statistics over weight matrices (cosine similarity,
//!   the interpolation angle Θ used by geodesic merging, simple summaries).
//! * [`tune`] — every kernel block size and parallel-dispatch threshold as a
//!   named, documented constant, plus the matvec fast-path call counter that
//!   lets decode paths prove which kernel they ran on.
//! * [`reference`] — the retained naive kernels, used as differential-test
//!   oracles for the blocked implementations (1e-4 relative tolerance).
//! * [`backend`] — the pluggable kernel tier: scalar reference, the blocked
//!   autovectorized kernels, and an explicit AVX2/FMA tier selected once per
//!   process by runtime feature detection (`CHIPALIGN_BACKEND` overrides).
//!   `matvec`/`vecmat`/GEMM rows all route through the active backend.
//! * [`QuantizedMatrix`] — per-row-scaled symmetric int8 weights with
//!   int8×f32 matvec/skinny-GEMM kernels for the decode path; f32 kernels
//!   stay as differential oracles.
//!
//! The ChipAlign paper (DAC 2025) treats each weight matrix
//! `W ∈ R^{p×q}` as a point that can be projected onto the unit
//! `n`-sphere (`n = p·q − 1`) by dividing by its Frobenius norm. Everything
//! required for that projection and the subsequent spherical interpolation is
//! a flat pass over `p·q` numbers, which is why this crate keeps matrices as
//! contiguous `Vec<f32>` buffers and exposes slice access ([`Matrix::data`])
//! for linear-time merging kernels.
//!
//! # Example
//!
//! ```
//! use chipalign_tensor::{Matrix, rng::Pcg32};
//!
//! # fn main() -> Result<(), chipalign_tensor::TensorError> {
//! let mut rng = Pcg32::seed(42);
//! let a = Matrix::randn(4, 8, 0.02, &mut rng);
//! let b = Matrix::randn(8, 3, 0.02, &mut rng);
//! let c = a.matmul(&b)?;
//! assert_eq!((c.rows(), c.cols()), (4, 3));
//! let norm = c.frobenius_norm();
//! assert!(norm.is_finite());
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the explicit-SIMD kernels in
// `backend::x86` are the one sanctioned `unsafe` island (scoped
// `#[allow(unsafe_code)]`, every intrinsic behind runtime feature
// detection); everything else in the crate still refuses unsafe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod error;
mod matrix;
pub mod ops;
mod quant;
pub mod reference;
pub mod rng;
pub mod stats;
pub mod tune;

pub use error::TensorError;
pub use matrix::Matrix;
pub use quant::QuantizedMatrix;

use std::fmt;

use rayon::prelude::*;

use crate::rng::Pcg32;
use crate::TensorError;

/// Minimum element count before matmul parallelises across rows.
const PAR_THRESHOLD: usize = 32 * 1024;

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the single tensor type of the workspace: 1-D parameters such
/// as RMSNorm gains are represented as `1 × q` matrices so that the merging
/// kernels (which view any weight as a point in `R^{p·q}`) treat every
/// parameter uniformly.
///
/// The buffer is always exactly `rows * cols` long and contiguous, so
/// linear-time whole-weight passes (Frobenius norms, geodesic interpolation)
/// can operate on [`Matrix::data`] directly.
///
/// # Example
///
/// ```
/// use chipalign_tensor::Matrix;
///
/// # fn main() -> Result<(), chipalign_tensor::TensorError> {
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix of ones.
    #[must_use]
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix::filled(rows, cols, 1.0)
    }

    /// Creates a `rows × cols` matrix with every element equal to `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Wraps an existing buffer as a `rows × cols` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBuffer {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, TensorError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(TensorError::BadBuffer {
                    rows: nrows,
                    cols: ncols,
                    len: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix of i.i.d. normal samples with standard deviation
    /// `std` (mean zero).
    #[must_use]
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Pcg32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(rng.normal() * std);
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with Xavier/Glorot-uniform initialisation, the
    /// default for the transformer projection weights in `chipalign-nn`.
    #[must_use]
    pub fn xavier(rows: usize, cols: usize, rng: &mut Pcg32) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push((rng.uniform() * 2.0 - 1.0) * bound);
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(row, col)`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] for an invalid index.
    pub fn set(&mut self, row: usize, col: usize, value: f32) -> Result<(), TensorError> {
        if row < self.rows && col < self.cols {
            self.data[row * self.cols + col] = value;
            Ok(())
        } else {
            Err(TensorError::OutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            })
        }
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Applies `f` to every element, producing a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped matrices elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(
        &self,
        other: &Matrix,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self, TensorError> {
        self.check_same_shape(other, "zip_map")?;
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<(), TensorError> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Computes `self += alpha * other` in place (BLAS `axpy`).
    ///
    /// This is the inner loop of every merging method, so it stays
    /// allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) -> Result<(), TensorError> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self * scalar`.
    #[must_use]
    pub fn scale(&self, scalar: f32) -> Self {
        self.map(|x| x * scalar)
    }

    /// Multiplies every element by `scalar` in place.
    pub fn scale_inplace(&mut self, scalar: f32) {
        for x in &mut self.data {
            *x *= scalar;
        }
    }

    /// Linear interpolation `(1 - t) * self + t * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn lerp(&self, other: &Matrix, t: f32) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| (1.0 - t) * a + t * b)
    }

    /// Matrix product `self · other`.
    ///
    /// Parallelises across output rows once the output exceeds an internal
    /// threshold.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Self, TensorError> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        let body = |(r, out_row): (usize, &mut [f32])| {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        };
        if m * n * k >= PAR_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.chunks_mut(n).enumerate().for_each(body);
        }
        Matrix::from_vec(m, n, out)
    }

    /// Matrix product `self · otherᵀ` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != other.cols()`.
    pub fn matmul_bt(&self, other: &Matrix) -> Result<Self, TensorError> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = vec![0.0f32; m * n];
        let body = |(r, out_row): (usize, &mut [f32])| {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (c, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[c * k..(c + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        };
        if m * n * k >= PAR_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.chunks_mut(n).enumerate().for_each(body);
        }
        Matrix::from_vec(m, n, out)
    }

    /// Matrix product `selfᵀ · other` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.rows() != other.rows()`.
    pub fn matmul_at(&self, other: &Matrix) -> Result<Self, TensorError> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_at",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        // Accumulate k rank-1 updates; serial because m*n is usually small
        // relative to k in gradient computations, and updates alias rows.
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (r, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[r * n..(r + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Matrix::from_vec(m, n, out)
    }

    /// Returns the transposed matrix.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm `||W||_F = sqrt(Σ w_ij²)`, accumulated in `f64`.
    ///
    /// This is the projection denominator in ChipAlign's unit-sphere
    /// normalisation.
    #[must_use]
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Frobenius inner product `⟨A, B⟩ = Σ a_ij · b_ij`, accumulated in
    /// `f64`.
    ///
    /// Used to compute the geodesic angle `Θ = arccos⟨Ā, B̄⟩` between two
    /// unit-normalised weight matrices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn frobenius_dot(&self, other: &Matrix) -> Result<f64, TensorError> {
        self.check_same_shape(other, "frobenius_dot")?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum())
    }

    /// Sum of absolute values (entrywise L1 norm).
    #[must_use]
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|x| f64::from(x.abs())).sum::<f64>() as f32
    }

    /// Largest absolute element, or 0 for an empty matrix.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty matrix.
    pub fn mean(&self) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "mean" });
        }
        Ok((self.data.iter().map(|&x| f64::from(x)).sum::<f64>() / self.data.len() as f64) as f32)
    }

    /// `true` if every element is finite (no NaN/inf).
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `true` if the two matrices have the same shape and all elements are
    /// within `tol` of one another. Intended for tests.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    fn check_same_shape(&self, other: &Matrix, op: &'static str) -> Result<(), TensorError> {
        if self.shape() == other.shape() {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            })
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{}", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, ", {:?})", self.data)
        } else {
            write!(
                f,
                ", frob={:.4}, head={:?}...)",
                self.frobenius_norm(),
                &self.data[..4.min(self.data.len())]
            )
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:8.4}", self.data[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).expect("valid")
    }

    #[test]
    fn constructors_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::ones(1, 4).data(), &[1.0; 4]);
        assert_eq!(Matrix::filled(2, 2, 7.5).data(), &[7.5; 4]);
        let id = Matrix::identity(3);
        assert_eq!(id.get(0, 0), Some(1.0));
        assert_eq!(id.get(0, 1), Some(0.0));
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::BadBuffer { len: 3, .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(err.is_err());
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).expect("rect");
        assert_eq!(ok.shape(), (2, 2));
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn get_set_bounds() {
        let mut m = small();
        assert_eq!(m.get(1, 2), Some(6.0));
        assert_eq!(m.get(2, 0), None);
        m.set(0, 0, 9.0).expect("in bounds");
        assert_eq!(m.get(0, 0), Some(9.0));
        assert!(matches!(
            m.set(0, 3, 0.0),
            Err(TensorError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn row_access() {
        let m = small();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_panics_out_of_bounds() {
        let _ = small().row(5);
    }

    #[test]
    fn elementwise_ops() {
        let a = small();
        let b = a.scale(2.0);
        assert_eq!(a.add(&b).expect("same shape").data()[5], 18.0);
        assert_eq!(b.sub(&a).expect("same shape").data(), a.data());
        assert_eq!(a.hadamard(&a).expect("same shape").data()[2], 9.0);
        let mut c = a.clone();
        c.axpy(0.5, &b).expect("same shape");
        assert_eq!(c.data()[0], 2.0);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(a.add(&b).is_err());
        assert!(a.frobenius_dot(&b).is_err());
        assert!(a.lerp(&b, 0.5).is_err());
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).expect("ok");
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).expect("ok");
        let c = a.matmul(&b).expect("conformable");
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = small();
        let c = a.matmul(&Matrix::identity(3)).expect("conformable");
        assert!(c.approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let mut rng = Pcg32::seed(1);
        let a = Matrix::randn(5, 7, 1.0, &mut rng);
        let b = Matrix::randn(4, 7, 1.0, &mut rng);
        let fast = a.matmul_bt(&b).expect("conformable");
        let slow = a.matmul(&b.transpose()).expect("conformable");
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let mut rng = Pcg32::seed(2);
        let a = Matrix::randn(6, 3, 1.0, &mut rng);
        let b = Matrix::randn(6, 5, 1.0, &mut rng);
        let fast = a.matmul_at(&b).expect("conformable");
        let slow = a.transpose().matmul(&b).expect("conformable");
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn matmul_parallel_path_agrees_with_serial() {
        // Large enough to cross PAR_THRESHOLD.
        let mut rng = Pcg32::seed(3);
        let a = Matrix::randn(64, 64, 0.5, &mut rng);
        let b = Matrix::randn(64, 64, 0.5, &mut rng);
        let big = a.matmul(&b).expect("conformable");
        // Serial reference via per-element dot products.
        let reference = Matrix::from_fn(64, 64, |r, c| {
            (0..64).map(|k| a.row(r)[k] * b.row(k)[c]).sum()
        });
        assert!(big.approx_eq(&reference, 1e-3));
    }

    #[test]
    fn transpose_involution() {
        let a = small();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), Some(6.0));
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]).expect("ok");
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn frobenius_dot_is_symmetric() {
        let mut rng = Pcg32::seed(4);
        let a = Matrix::randn(3, 3, 1.0, &mut rng);
        let b = Matrix::randn(3, 3, 1.0, &mut rng);
        let ab = a.frobenius_dot(&b).expect("same shape");
        let ba = b.frobenius_dot(&a).expect("same shape");
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints() {
        let a = small();
        let b = a.scale(3.0);
        assert!(a.lerp(&b, 0.0).expect("same shape").approx_eq(&a, 1e-6));
        assert!(a.lerp(&b, 1.0).expect("same shape").approx_eq(&b, 1e-6));
    }

    #[test]
    fn norms_and_stats() {
        let m = Matrix::from_vec(1, 3, vec![-1.0, 2.0, -3.0]).expect("ok");
        assert_eq!(m.l1_norm(), 6.0);
        assert_eq!(m.max_abs(), 3.0);
        assert!((m.mean().expect("non-empty") - (-2.0 / 3.0)).abs() < 1e-6);
        assert!(m.all_finite());
        let bad = Matrix::from_vec(1, 1, vec![f32::NAN]).expect("ok");
        assert!(!bad.all_finite());
    }

    #[test]
    fn mean_of_empty_errors() {
        let empty = Matrix::zeros(0, 5);
        assert!(matches!(empty.mean(), Err(TensorError::Empty { .. })));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = Pcg32::seed(5);
        let m = Matrix::xavier(16, 16, &mut rng);
        let bound = (6.0 / 32.0f32).sqrt();
        assert!(m.max_abs() <= bound + 1e-6);
        assert!(m.max_abs() > bound * 0.5, "should come close to the bound");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Matrix::zeros(0, 0)).is_empty());
        assert!(format!("{:?}", Matrix::zeros(100, 100)).contains("frob"));
    }

    #[test]
    fn display_formats_rows() {
        let s = format!("{}", Matrix::identity(2));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn matrix_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Matrix>();
    }
}

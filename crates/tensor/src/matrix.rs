use std::fmt;

use rayon::prelude::*;

use crate::rng::Pcg32;
use crate::{tune, TensorError};

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the single tensor type of the workspace: 1-D parameters such
/// as RMSNorm gains are represented as `1 × q` matrices so that the merging
/// kernels (which view any weight as a point in `R^{p·q}`) treat every
/// parameter uniformly.
///
/// The buffer is always exactly `rows * cols` long and contiguous, so
/// linear-time whole-weight passes (Frobenius norms, geodesic interpolation)
/// can operate on [`Matrix::data`] directly.
///
/// # Example
///
/// ```
/// use chipalign_tensor::Matrix;
///
/// # fn main() -> Result<(), chipalign_tensor::TensorError> {
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix of ones.
    #[must_use]
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix::filled(rows, cols, 1.0)
    }

    /// Creates a `rows × cols` matrix with every element equal to `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Wraps an existing buffer as a `rows × cols` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBuffer {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self, TensorError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(TensorError::BadBuffer {
                    rows: nrows,
                    cols: ncols,
                    len: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix of i.i.d. normal samples with standard deviation
    /// `std` (mean zero).
    #[must_use]
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Pcg32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(rng.normal() * std);
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix with Xavier/Glorot-uniform initialisation, the
    /// default for the transformer projection weights in `chipalign-nn`.
    #[must_use]
    pub fn xavier(rows: usize, cols: usize, rng: &mut Pcg32) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push((rng.uniform() * 2.0 - 1.0) * bound);
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(row, col)`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Option<f32> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::OutOfBounds`] for an invalid index.
    pub fn set(&mut self, row: usize, col: usize, value: f32) -> Result<(), TensorError> {
        if row < self.rows && col < self.cols {
            self.data[row * self.cols + col] = value;
            Ok(())
        } else {
            Err(TensorError::OutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            })
        }
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Applies `f` to every element, producing a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped matrices elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(
        &self,
        other: &Matrix,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self, TensorError> {
        self.check_same_shape(other, "zip_map")?;
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) -> Result<(), TensorError> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Computes `self += alpha * other` in place (BLAS `axpy`).
    ///
    /// This is the inner loop of every merging method, so it stays
    /// allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) -> Result<(), TensorError> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self * scalar`.
    #[must_use]
    pub fn scale(&self, scalar: f32) -> Self {
        self.map(|x| x * scalar)
    }

    /// Multiplies every element by `scalar` in place.
    pub fn scale_inplace(&mut self, scalar: f32) {
        for x in &mut self.data {
            *x *= scalar;
        }
    }

    /// Linear interpolation `(1 - t) * self + t * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn lerp(&self, other: &Matrix, t: f32) -> Result<Self, TensorError> {
        self.zip_map(other, |a, b| (1.0 - t) * a + t * b)
    }

    /// Matrix product `self · other`.
    ///
    /// The kernel processes each output row in fixed-width column tiles
    /// ([`tune::GEMM_COL_TILE`]) whose partial sums live in a stack array the
    /// compiler keeps in vector registers, and parallelises across output
    /// rows with rayon once `m·n·k` reaches [`tune::PAR_FLOP_THRESHOLD`].
    /// Vector-shaped products (`m == 1` or `n == 1`) dispatch to the
    /// [`Matrix::vecmat`]/[`Matrix::matvec`] fast paths.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Self, TensorError> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        if m == 1 {
            return Matrix::from_vec(1, n, other.vecmat(&self.data)?);
        }
        if n == 1 {
            return Matrix::from_vec(m, 1, self.matvec(&other.data)?);
        }
        let mut out = vec![0.0f32; m * n];
        if out.is_empty() {
            return Matrix::from_vec(m, n, out);
        }
        let body = |(r, out_row): (usize, &mut [f32])| {
            gemm_row_tiled(&self.data[r * k..(r + 1) * k], &other.data, n, out_row);
        };
        if m * n * k >= tune::PAR_FLOP_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.chunks_mut(n).enumerate().for_each(body);
        }
        Matrix::from_vec(m, n, out)
    }

    /// Matrix product `self · otherᵀ` without materialising the transpose.
    ///
    /// Each output row is a batch of dot products against the rows of
    /// `other`; the kernel blocks over `k` ([`tune::GEMM_K_BLOCK`]) so a
    /// panel of the left-hand row stays cache-hot while it sweeps `other`,
    /// computes every dot with the lane-split reduction
    /// ([`tune::DOT_LANES`]), and parallelises across output rows above
    /// [`tune::PAR_FLOP_THRESHOLD`]. `m == 1` (the KV-cached decode shape)
    /// dispatches to [`Matrix::matvec`]; `2 ≤ m ≤
    /// [`tune::GEMM_SKINNY_M_MAX`]` (the *batched* decode shape) takes a
    /// skinny kernel whose whole-row dots accumulate in exactly
    /// [`Matrix::matvec`]'s order, so stacking rows never changes the bits
    /// of any row's result.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != other.cols()`.
    pub fn matmul_bt(&self, other: &Matrix) -> Result<Self, TensorError> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_bt",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.rows);
        if m == 1 {
            return Matrix::from_vec(1, n, other.matvec(&self.data)?);
        }
        if n == 1 {
            return Matrix::from_vec(m, 1, self.matvec(&other.data)?);
        }
        let mut out = vec![0.0f32; m * n];
        if out.is_empty() {
            return Matrix::from_vec(m, n, out);
        }
        let skinny = m <= tune::GEMM_SKINNY_M_MAX;
        let body = |(r, out_row): (usize, &mut [f32])| {
            let a_row = &self.data[r * k..(r + 1) * k];
            if skinny {
                gemm_bt_skinny_row(a_row, &other.data, k, out_row);
            } else {
                gemm_bt_row(a_row, &other.data, k, out_row);
            }
        };
        if m * n * k >= tune::PAR_FLOP_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.chunks_mut(n).enumerate().for_each(body);
        }
        Matrix::from_vec(m, n, out)
    }

    /// Matrix product `selfᵀ · other` without materialising the transpose.
    ///
    /// Rank-1-free formulation: output row `r` reads column `r` of `self`
    /// (stride `m`) against the rows of `other`, so every output row is
    /// written by exactly one task and the kernel gets the same
    /// parallel-vs-serial dispatch as its siblings (rayon across output rows
    /// above [`tune::PAR_FLOP_THRESHOLD`]), with the same column-tiled
    /// register accumulation as [`Matrix::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.rows() != other.rows()`.
    pub fn matmul_at(&self, other: &Matrix) -> Result<Self, TensorError> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_at",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; m * n];
        if out.is_empty() {
            return Matrix::from_vec(m, n, out);
        }
        let body = |(r, out_row): (usize, &mut [f32])| {
            gemm_at_row(&self.data, &other.data, r, m, k, n, out_row);
        };
        if m * n * k >= tune::PAR_FLOP_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.chunks_mut(n).enumerate().for_each(body);
        }
        Matrix::from_vec(m, n, out)
    }

    /// Matrix–vector product `self · x` (with `x` a column vector of length
    /// `self.cols()`), one lane-split dot product per row.
    ///
    /// This is the fast path that dominates KV-cached decode: every
    /// projection of a single token is a `(out × in) · in` product, and
    /// skipping the `Matrix` wrapper avoids both the `1 × n` allocation and
    /// the general kernel's tiling overhead. Parallelises across rows above
    /// [`tune::PAR_FLOP_THRESHOLD`]. Each call is counted in
    /// [`tune::matvec_calls`] so decode paths can prove they use it.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != x.len()`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>, TensorError> {
        if self.cols != x.len() {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        tune::note_matvec();
        if self.rows * self.cols >= tune::PAR_FLOP_THRESHOLD {
            Ok((0..self.rows)
                .into_par_iter()
                .map(|r| dot_lanes(self.row(r), x))
                .collect())
        } else {
            Ok((0..self.rows).map(|r| dot_lanes(self.row(r), x)).collect())
        }
    }

    /// Vector–matrix product `xᵀ · self` (with `x` a row vector of length
    /// `self.rows()`), using the same column-tiled register accumulation as
    /// [`Matrix::matmul`]. Counted in [`tune::matvec_calls`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f32]) -> Result<Vec<f32>, TensorError> {
        if x.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, x.len()),
                rhs: self.shape(),
            });
        }
        tune::note_matvec();
        let mut out = vec![0.0f32; self.cols];
        gemm_row_tiled(x, &self.data, self.cols, &mut out);
        Ok(out)
    }

    /// Returns the transposed matrix.
    ///
    /// Blocked over [`tune::TRANSPOSE_BLOCK`]-sided square tiles so both the
    /// row-major reads and the column-major writes of a tile stay in L1.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let (rows, cols) = (self.rows, self.cols);
        let mut out = vec![0.0f32; rows * cols];
        let block = tune::TRANSPOSE_BLOCK;
        for r0 in (0..rows).step_by(block) {
            for c0 in (0..cols).step_by(block) {
                for r in r0..rows.min(r0 + block) {
                    for c in c0..cols.min(c0 + block) {
                        out[c * rows + r] = self.data[r * cols + c];
                    }
                }
            }
        }
        Matrix {
            rows: cols,
            cols: rows,
            data: out,
        }
    }

    /// Frobenius norm `||W||_F = sqrt(Σ w_ij²)`, accumulated in `f64`.
    ///
    /// This is the projection denominator in ChipAlign's unit-sphere
    /// normalisation.
    #[must_use]
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Frobenius inner product `⟨A, B⟩ = Σ a_ij · b_ij`, accumulated in
    /// `f64`.
    ///
    /// Used to compute the geodesic angle `Θ = arccos⟨Ā, B̄⟩` between two
    /// unit-normalised weight matrices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn frobenius_dot(&self, other: &Matrix) -> Result<f64, TensorError> {
        self.check_same_shape(other, "frobenius_dot")?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum())
    }

    /// Sum of absolute values (entrywise L1 norm).
    #[must_use]
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|x| f64::from(x.abs())).sum::<f64>() as f32
    }

    /// Largest absolute element, or 0 for an empty matrix.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Mean of all elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty matrix.
    pub fn mean(&self) -> Result<f32, TensorError> {
        if self.is_empty() {
            return Err(TensorError::Empty { op: "mean" });
        }
        Ok((self.data.iter().map(|&x| f64::from(x)).sum::<f64>() / self.data.len() as f64) as f32)
    }

    /// `true` if every element is finite (no NaN/inf).
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `true` if the two matrices have the same shape and all elements are
    /// within `tol` of one another. Intended for tests.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    fn check_same_shape(&self, other: &Matrix, op: &'static str) -> Result<(), TensorError> {
        if self.shape() == other.shape() {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            })
        }
    }
}

/// Dot product through the process-wide kernel backend
/// ([`crate::backend::active`]). Historically this *was* the lane-split
/// blocked reduction; that code now lives in the [`crate::backend`] module
/// as the blocked tier, and this wrapper keeps every caller
/// (`matvec`/`gemm_bt_row`/`gemm_bt_skinny_row`) on whichever tier was
/// selected at startup — one backend per process, so accumulation order
/// never varies between call sites.
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    crate::backend::active().dot(a, b)
}

/// One output row of `A·B` through the process-wide kernel backend (the
/// column-tiled register accumulation lives in [`crate::backend`] as the
/// blocked tier; the SIMD tier replaces it with 16-wide FMA tiles).
fn gemm_row_tiled(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    crate::backend::active().gemm_row(a_row, b, n, out_row);
}

/// One output row of `A·Bᵀ`: block `a_row` into [`tune::GEMM_K_BLOCK`]-long
/// panels that stay L1-resident while dotted against every row of `B`.
///
/// For `k <= GEMM_K_BLOCK` this is a single whole-row [`dot_lanes`] per
/// output element — the same accumulation order as [`Matrix::matvec`], which
/// keeps full-sequence forward and KV-cached decode numerically identical.
fn gemm_bt_row(a_row: &[f32], b: &[f32], k: usize, out_row: &mut [f32]) {
    let mut k0 = 0;
    while k0 < k {
        let kw = tune::GEMM_K_BLOCK.min(k - k0);
        let a_panel = &a_row[k0..k0 + kw];
        for (c, o) in out_row.iter_mut().enumerate() {
            *o += dot_lanes(a_panel, &b[c * k + k0..c * k + k0 + kw]);
        }
        k0 += kw;
    }
}

/// One output row of `A·Bᵀ` for tall-skinny `A` (`2 ≤ m ≤
/// [`tune::GEMM_SKINNY_M_MAX`]`, the batched-decode shape): one whole-row
/// [`dot_lanes`] per output element, with no k-panel split.
///
/// A single dot per element keeps the accumulation order identical to
/// [`Matrix::matvec`] at *any* `k` — [`gemm_bt_row`] only guarantees that
/// for `k ≤ GEMM_K_BLOCK` — which is what lets batched decode stay
/// bit-for-bit equal to per-session decode. It also writes each output
/// element exactly once instead of once per k-panel; with at most 32
/// left-hand rows the panelling has nothing to amortise, so its extra
/// `out_row` read-modify-write traffic only costs.
fn gemm_bt_skinny_row(a_row: &[f32], b: &[f32], k: usize, out_row: &mut [f32]) {
    for (c, o) in out_row.iter_mut().enumerate() {
        *o = dot_lanes(a_row, &b[c * k..(c + 1) * k]);
    }
}

/// One output row of `Aᵀ·B`: output row `r` reads column `r` of `A` (stride
/// `m`) against the rows of `B`, column-tiled like [`gemm_row_tiled`]. No
/// rank-1 updates, so rows never alias and row-parallelism is safe.
fn gemm_at_row(a: &[f32], b: &[f32], r: usize, m: usize, k: usize, n: usize, out_row: &mut [f32]) {
    let mut j0 = 0;
    while j0 < n {
        let w = tune::GEMM_COL_TILE.min(n - j0);
        let mut acc = [0.0f32; tune::GEMM_COL_TILE];
        for kk in 0..k {
            let av = a[kk * m + r];
            let b_strip = &b[kk * n + j0..kk * n + j0 + w];
            for (ac, &bv) in acc.iter_mut().zip(b_strip) {
                *ac += av * bv;
            }
        }
        out_row[j0..j0 + w].copy_from_slice(&acc[..w]);
        j0 += w;
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{}", self.rows, self.cols)?;
        if self.len() <= 16 {
            write!(f, ", {:?})", self.data)
        } else {
            write!(
                f,
                ", frob={:.4}, head={:?}...)",
                self.frobenius_norm(),
                &self.data[..4.min(self.data.len())]
            )
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:8.4}", self.data[r * self.cols + c])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Matrix {
        Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).expect("valid")
    }

    #[test]
    fn constructors_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::ones(1, 4).data(), &[1.0; 4]);
        assert_eq!(Matrix::filled(2, 2, 7.5).data(), &[7.5; 4]);
        let id = Matrix::identity(3);
        assert_eq!(id.get(0, 0), Some(1.0));
        assert_eq!(id.get(0, 1), Some(0.0));
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::BadBuffer { len: 3, .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(err.is_err());
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).expect("rect");
        assert_eq!(ok.shape(), (2, 2));
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn get_set_bounds() {
        let mut m = small();
        assert_eq!(m.get(1, 2), Some(6.0));
        assert_eq!(m.get(2, 0), None);
        m.set(0, 0, 9.0).expect("in bounds");
        assert_eq!(m.get(0, 0), Some(9.0));
        assert!(matches!(
            m.set(0, 3, 0.0),
            Err(TensorError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn row_access() {
        let m = small();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_panics_out_of_bounds() {
        let _ = small().row(5);
    }

    #[test]
    fn elementwise_ops() {
        let a = small();
        let b = a.scale(2.0);
        assert_eq!(a.add(&b).expect("same shape").data()[5], 18.0);
        assert_eq!(b.sub(&a).expect("same shape").data(), a.data());
        assert_eq!(a.hadamard(&a).expect("same shape").data()[2], 9.0);
        let mut c = a.clone();
        c.axpy(0.5, &b).expect("same shape");
        assert_eq!(c.data()[0], 2.0);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(a.add(&b).is_err());
        assert!(a.frobenius_dot(&b).is_err());
        assert!(a.lerp(&b, 0.5).is_err());
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).expect("ok");
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).expect("ok");
        let c = a.matmul(&b).expect("conformable");
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = small();
        let c = a.matmul(&Matrix::identity(3)).expect("conformable");
        assert!(c.approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let mut rng = Pcg32::seed(1);
        let a = Matrix::randn(5, 7, 1.0, &mut rng);
        let b = Matrix::randn(4, 7, 1.0, &mut rng);
        let fast = a.matmul_bt(&b).expect("conformable");
        let slow = a.matmul(&b.transpose()).expect("conformable");
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        let mut rng = Pcg32::seed(2);
        let a = Matrix::randn(6, 3, 1.0, &mut rng);
        let b = Matrix::randn(6, 5, 1.0, &mut rng);
        let fast = a.matmul_at(&b).expect("conformable");
        let slow = a.transpose().matmul(&b).expect("conformable");
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn matmul_parallel_path_agrees_with_serial() {
        // Large enough to cross PAR_THRESHOLD.
        let mut rng = Pcg32::seed(3);
        let a = Matrix::randn(64, 64, 0.5, &mut rng);
        let b = Matrix::randn(64, 64, 0.5, &mut rng);
        let big = a.matmul(&b).expect("conformable");
        // Serial reference via per-element dot products.
        let reference = Matrix::from_fn(64, 64, |r, c| {
            (0..64).map(|k| a.row(r)[k] * b.row(k)[c]).sum()
        });
        assert!(big.approx_eq(&reference, 1e-3));
    }

    #[test]
    fn matmul_at_parallel_path_crosses_threshold() {
        // 40·40·40 = 64000 >= PAR_FLOP_THRESHOLD, so this exercises the
        // rayon dispatch that replaced the old always-serial rank-1 loop.
        let mut rng = Pcg32::seed(11);
        let a = Matrix::randn(40, 40, 0.5, &mut rng);
        let b = Matrix::randn(40, 40, 0.5, &mut rng);
        assert!(a.rows() * a.cols() * b.cols() >= tune::PAR_FLOP_THRESHOLD);
        let fast = a.matmul_at(&b).expect("conformable");
        let slow = a.transpose().matmul(&b).expect("conformable");
        assert!(fast.approx_eq(&slow, 1e-3));
    }

    #[test]
    fn matvec_matches_column_matmul() {
        let mut rng = Pcg32::seed(12);
        let w = Matrix::randn(9, 21, 1.0, &mut rng);
        let x: Vec<f32> = (0..21).map(|i| (i as f32).sin()).collect();
        let fast = w.matvec(&x).expect("conformable");
        let col = Matrix::from_vec(21, 1, x).expect("ok");
        let slow = w.matmul(&col).expect("conformable");
        assert_eq!(fast.len(), 9);
        for (a, b) in fast.iter().zip(slow.data()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!(w.matvec(&[1.0]).is_err());
    }

    #[test]
    fn vecmat_matches_row_matmul_bt() {
        let mut rng = Pcg32::seed(13);
        let w = Matrix::randn(17, 5, 1.0, &mut rng);
        let x: Vec<f32> = (0..17).map(|i| (i as f32).cos()).collect();
        let fast = w.vecmat(&x).expect("conformable");
        // xᵀ·W == (Wᵀ·x)ᵀ, so compare against the transposed matvec.
        let slow = w.transpose().matvec(&x).expect("conformable");
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!(w.vecmat(&[1.0]).is_err());
    }

    #[test]
    fn single_row_matmul_uses_vector_path() {
        let mut rng = Pcg32::seed(14);
        let a = Matrix::randn(1, 33, 1.0, &mut rng);
        let b = Matrix::randn(33, 19, 1.0, &mut rng);
        let before = tune::matvec_calls();
        let c = a.matmul(&b).expect("conformable");
        let d = a.matmul_bt(&b.transpose()).expect("conformable");
        assert!(tune::matvec_calls() >= before + 2);
        assert_eq!(c.shape(), (1, 19));
        assert!(c.approx_eq(&d, 1e-5));
    }

    #[test]
    fn skinny_matmul_bt_rows_are_bitwise_matvec() {
        // k = 700 > GEMM_K_BLOCK: the panelled kernel would split the
        // reduction here, so this pins that the skinny path really is a
        // single whole-row dot per element — every output row must equal
        // the standalone matvec of that row, bit for bit.
        let mut rng = Pcg32::seed(21);
        let a = Matrix::randn(8, 700, 1.0, &mut rng);
        let b = Matrix::randn(40, 700, 1.0, &mut rng);
        assert!(a.rows() <= tune::GEMM_SKINNY_M_MAX);
        let batched = a.matmul_bt(&b).expect("conformable");
        for r in 0..a.rows() {
            let single = b.matvec(a.row(r)).expect("conformable");
            assert_eq!(batched.row(r), &single[..], "row {r} drifted");
        }
    }

    #[test]
    fn matmul_bt_agrees_across_skinny_boundary() {
        // m = 2, the last skinny width, and the first panelled width must
        // all agree with the explicit-transpose formulation.
        let mut rng = Pcg32::seed(22);
        for m in [2, tune::GEMM_SKINNY_M_MAX, tune::GEMM_SKINNY_M_MAX + 1] {
            let a = Matrix::randn(m, 300, 1.0, &mut rng);
            let b = Matrix::randn(10, 300, 1.0, &mut rng);
            let fast = a.matmul_bt(&b).expect("conformable");
            let slow = a.matmul(&b.transpose()).expect("conformable");
            assert!(fast.approx_eq(&slow, 1e-3), "m = {m} diverged");
        }
    }

    #[test]
    fn matmul_handles_zero_sized_shapes() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(a.matmul(&b).expect("conformable").shape(), (0, 3));
        let c = Matrix::zeros(3, 0);
        assert_eq!(b.matmul(&c).expect("conformable").shape(), (4, 0));
        let d = Matrix::zeros(2, 0);
        assert_eq!(
            d.matmul(&c.transpose()).expect("conformable").shape(),
            (2, 3)
        );
        assert_eq!(
            c.matmul_at(&Matrix::zeros(3, 2)).expect("ok").shape(),
            (0, 2)
        );
    }

    #[test]
    fn transpose_blocked_matches_naive_on_odd_shapes() {
        // 37 and 50 straddle TRANSPOSE_BLOCK boundaries on both axes.
        let mut rng = Pcg32::seed(15);
        let a = Matrix::randn(37, 50, 1.0, &mut rng);
        let t = a.transpose();
        assert_eq!(t.shape(), (50, 37));
        for r in 0..37 {
            for c in 0..50 {
                assert_eq!(t.get(c, r), a.get(r, c));
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = small();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), Some(6.0));
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]).expect("ok");
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn frobenius_dot_is_symmetric() {
        let mut rng = Pcg32::seed(4);
        let a = Matrix::randn(3, 3, 1.0, &mut rng);
        let b = Matrix::randn(3, 3, 1.0, &mut rng);
        let ab = a.frobenius_dot(&b).expect("same shape");
        let ba = b.frobenius_dot(&a).expect("same shape");
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints() {
        let a = small();
        let b = a.scale(3.0);
        assert!(a.lerp(&b, 0.0).expect("same shape").approx_eq(&a, 1e-6));
        assert!(a.lerp(&b, 1.0).expect("same shape").approx_eq(&b, 1e-6));
    }

    #[test]
    fn norms_and_stats() {
        let m = Matrix::from_vec(1, 3, vec![-1.0, 2.0, -3.0]).expect("ok");
        assert_eq!(m.l1_norm(), 6.0);
        assert_eq!(m.max_abs(), 3.0);
        assert!((m.mean().expect("non-empty") - (-2.0 / 3.0)).abs() < 1e-6);
        assert!(m.all_finite());
        let bad = Matrix::from_vec(1, 1, vec![f32::NAN]).expect("ok");
        assert!(!bad.all_finite());
    }

    #[test]
    fn mean_of_empty_errors() {
        let empty = Matrix::zeros(0, 5);
        assert!(matches!(empty.mean(), Err(TensorError::Empty { .. })));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = Pcg32::seed(5);
        let m = Matrix::xavier(16, 16, &mut rng);
        let bound = (6.0 / 32.0f32).sqrt();
        assert!(m.max_abs() <= bound + 1e-6);
        assert!(m.max_abs() > bound * 0.5, "should come close to the bound");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Matrix::zeros(0, 0)).is_empty());
        assert!(format!("{:?}", Matrix::zeros(100, 100)).contains("frob"));
    }

    #[test]
    fn display_formats_rows() {
        let s = format!("{}", Matrix::identity(2));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn matrix_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Matrix>();
    }
}

//! Free-standing numeric kernels shared across the workspace.
//!
//! These are the stable scalar/slice primitives used by the transformer
//! forward/backward pass in `chipalign-nn` and the evaluation metrics in
//! `chipalign-eval`: numerically-stable softmax family, activation
//! functions, and small slice utilities.
//!
//! # Example
//!
//! ```
//! use chipalign_tensor::ops::{softmax_inplace, argmax};
//!
//! let mut logits = vec![1.0, 3.0, 2.0];
//! softmax_inplace(&mut logits);
//! let sum: f32 = logits.iter().sum();
//! assert!((sum - 1.0).abs() < 1e-6);
//! assert_eq!(argmax(&logits), Some(1));
//! ```

/// Numerically-stable in-place softmax over a slice.
///
/// An empty slice is left untouched.
pub fn softmax_inplace(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// Numerically-stable log-sum-exp of a slice.
///
/// Returns negative infinity for an empty slice, matching the sum over an
/// empty set.
#[must_use]
pub fn logsumexp(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return f32::NEG_INFINITY;
    }
    let max = xs.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Index of the largest element, or `None` for an empty slice.
///
/// Ties resolve to the earliest index, which keeps greedy decoding
/// deterministic.
#[must_use]
pub fn argmax(xs: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, bx)) if x <= bx => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// SiLU (sigmoid-weighted linear unit) activation: `x * sigmoid(x)`.
///
/// This is the gate nonlinearity of the SwiGLU feed-forward block.
#[must_use]
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Derivative of [`silu`] with respect to its input.
#[must_use]
pub fn silu_grad(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 + x * (1.0 - s))
}

/// Logistic sigmoid `1 / (1 + e^{-x})`.
#[must_use]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Dot product of two equal-length slices, accumulated in `f32`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot requires equal-length slices");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[must_use]
pub fn l2_norm(xs: &[f32]) -> f32 {
    xs.iter()
        .map(|&x| f64::from(x) * f64::from(x))
        .sum::<f64>()
        .sqrt() as f32
}

/// Scales `xs` so its Euclidean norm becomes 1; leaves an all-zero slice
/// unchanged. Returns the original norm.
pub fn normalize_inplace(xs: &mut [f32]) -> f32 {
    let norm = l2_norm(xs);
    if norm > 0.0 {
        for x in xs.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// Clips every element of `xs` into `[-bound, bound]`.
///
/// Gradient clipping for the Adam training loop.
pub fn clip_inplace(xs: &mut [f32], bound: f32) {
    for x in xs.iter_mut() {
        *x = x.clamp(-bound, bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = vec![0.0, 1.0, 2.0];
        softmax_inplace(&mut xs);
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut xs = vec![1000.0, 1000.0];
        softmax_inplace(&mut xs);
        assert!((xs[0] - 0.5).abs() < 1e-6);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut xs: Vec<f32> = vec![];
        softmax_inplace(&mut xs);
        assert!(xs.is_empty());
    }

    #[test]
    fn logsumexp_matches_naive() {
        let xs = [0.3f32, -1.2, 2.5];
        let naive = xs.iter().map(|x| x.exp()).sum::<f32>().ln();
        assert!((logsumexp(&xs) - naive).abs() < 1e-5);
    }

    #[test]
    fn logsumexp_empty_is_neg_inf() {
        assert_eq!(logsumexp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn logsumexp_large_values_stable() {
        let v = logsumexp(&[1e4, 1e4]);
        assert!((v - (1e4 + std::f32::consts::LN_2)).abs() < 1e-1);
    }

    #[test]
    fn argmax_ties_pick_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn sigmoid_symmetry() {
        for x in [-5.0f32, -0.5, 0.0, 0.5, 5.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn silu_grad_matches_finite_difference() {
        let h = 1e-3f32;
        for x in [-2.0f32, -0.3, 0.0, 0.7, 3.0] {
            let fd = (silu(x + h) - silu(x - h)) / (2.0 * h);
            assert!(
                (silu_grad(x) - fd).abs() < 1e-3,
                "grad mismatch at {x}: {} vs {fd}",
                silu_grad(x)
            );
        }
    }

    #[test]
    fn dot_and_l2() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn normalize_returns_norm_and_unit_length() {
        let mut xs = vec![3.0, 4.0];
        let norm = normalize_inplace(&mut xs);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((l2_norm(&xs) - 1.0).abs() < 1e-6);
        let mut zeros = vec![0.0; 3];
        assert_eq!(normalize_inplace(&mut zeros), 0.0);
        assert_eq!(zeros, vec![0.0; 3]);
    }

    #[test]
    fn clip_bounds() {
        let mut xs = vec![-10.0, 0.5, 10.0];
        clip_inplace(&mut xs, 1.0);
        assert_eq!(xs, vec![-1.0, 0.5, 1.0]);
    }
}

//! Per-row-scaled symmetric int8 weight matrices.
//!
//! Decode throughput on modern CPUs is bound by weight bytes streamed per
//! token, not by arithmetic. [`QuantizedMatrix`] stores each weight row as
//! `i8` codes plus one `f32` scale — `w ≈ scale · q` with
//! `scale = max|row| / 127` — so a projection matrix moves 1 byte per
//! weight instead of 4 (plus 4 bytes per row for the scale). The int8×f32
//! kernels route through the same [`crate::backend`] selection as the f32
//! kernels, and every output element is one whole-row
//! [`crate::backend::KernelBackend::dot_q8`], which preserves the serving
//! stack's bitwise invariant that batching rows never changes any single
//! row's result.
//!
//! Quantization is symmetric (no zero point) and clamps to ±127, so the
//! code range is sign-symmetric and `-q` is always representable.
//! Re-quantizing a dequantized matrix reproduces the identical `i8` codes
//! (the per-code error is far below half a step); the scales themselves
//! can drift by an ulp through the round trip, which is why persisted
//! quantized checkpoints are reconstructed from stored codes + scales via
//! [`QuantizedMatrix::from_parts`] rather than re-quantized.

use rayon::prelude::*;

use crate::backend;
use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::tune;

/// A row-major int8 matrix with one `f32` dequantization scale per row.
///
/// Row `r` of the logical `f32` matrix is `scales[r] · data[r·cols ..
/// (r+1)·cols]`. Rows whose source was all zero (or had a non-finite
/// maximum) get `scale = 0` and all-zero codes.
#[derive(Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl std::fmt::Debug for QuantizedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedMatrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("bytes", &self.weights_bytes())
            .finish()
    }
}

impl QuantizedMatrix {
    /// Quantizes an `f32` matrix with one symmetric scale per row:
    /// `scale = max|row| / 127`, `q = round(x / scale)` clamped to ±127.
    #[must_use]
    pub fn quantize(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            let src = m.row(r);
            let max_abs = src.iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
            let scale = max_abs / tune::QUANT_MAX;
            if !(scale.is_finite() && scale > 0.0) {
                continue; // all-zero (or degenerate) row: scale 0, codes 0
            }
            scales[r] = scale;
            for (q, &x) in data[r * cols..(r + 1) * cols].iter_mut().zip(src) {
                *q = (x / scale).round().clamp(-tune::QUANT_MAX, tune::QUANT_MAX) as i8;
            }
        }
        QuantizedMatrix {
            rows,
            cols,
            data,
            scales,
        }
    }

    /// Rebuilds a quantized matrix from stored codes and scales (the
    /// checkpoint-load path). This must be used — not re-quantization of a
    /// dequantized matrix — so a persisted quantized artifact loads back
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadBuffer`] if `data.len() != rows * cols` or
    /// `scales.len() != rows`.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        data: Vec<i8>,
        scales: Vec<f32>,
    ) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::BadBuffer {
                rows,
                cols,
                len: data.len(),
            });
        }
        if scales.len() != rows {
            return Err(TensorError::BadBuffer {
                rows,
                cols: 1,
                len: scales.len(),
            });
        }
        Ok(QuantizedMatrix {
            rows,
            cols,
            data,
            scales,
        })
    }

    /// Expands back to an `f32` matrix (`x = scale · q` per row). Used by
    /// differential tests and anywhere a dense f32 view is required.
    #[must_use]
    pub fn dequantize(&self) -> Matrix {
        let mut out = vec![0.0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let scale = self.scales[r];
            for (o, &q) in out[r * self.cols..(r + 1) * self.cols]
                .iter_mut()
                .zip(&self.data[r * self.cols..(r + 1) * self.cols])
            {
                *o = scale * f32::from(q);
            }
        }
        Matrix::from_vec(self.rows, self.cols, out).expect("buffer sized by construction")
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The int8 codes, row-major.
    #[must_use]
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The per-row dequantization scales.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The int8 codes of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The scale of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Bytes this matrix streams from memory per full pass: one byte per
    /// code plus four per row scale. The f32 equivalent is `4·rows·cols`.
    #[must_use]
    pub fn weights_bytes(&self) -> u64 {
        self.data.len() as u64 + 4 * self.scales.len() as u64
    }

    /// Matrix–vector product `self · x`: one whole-row int8×f32 dot per
    /// output element, through the process-wide backend. The decode fast
    /// path for quantized weights — counted in [`tune::matvec_calls`] and
    /// parallelised across rows above [`tune::PAR_FLOP_THRESHOLD`] exactly
    /// like [`Matrix::matvec`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != x.len()`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>, TensorError> {
        if self.cols != x.len() {
            return Err(TensorError::ShapeMismatch {
                op: "quant_matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        tune::note_matvec();
        let b = backend::active();
        if self.rows * self.cols >= tune::PAR_FLOP_THRESHOLD {
            Ok((0..self.rows)
                .into_par_iter()
                .map(|r| b.dot_q8(self.row(r), self.scales[r], x))
                .collect())
        } else {
            Ok((0..self.rows)
                .map(|r| b.dot_q8(self.row(r), self.scales[r], x))
                .collect())
        }
    }

    /// Skinny GEMM `a · selfᵀ` (activations times quantized weights, the
    /// batched-decode shape). Every output element is the same whole-row
    /// [`backend::KernelBackend::dot_q8`] that [`QuantizedMatrix::matvec`]
    /// computes, so stacking activation rows is bitwise identical to
    /// calling `matvec` per row — the quantized twin of the f32 skinny
    /// kernel's invariant.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `a.cols() != self.cols()`.
    pub fn matmul_bt(&self, a: &Matrix) -> Result<Matrix, TensorError> {
        if a.cols() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "quant_matmul_bt",
                lhs: a.shape(),
                rhs: self.shape(),
            });
        }
        let (m, k, n) = (a.rows(), self.cols, self.rows);
        if m == 1 {
            return Matrix::from_vec(1, n, self.matvec(a.data())?);
        }
        tune::note_matvec();
        let b = backend::active();
        let mut out = vec![0.0f32; m * n];
        let body = |(r, out_row): (usize, &mut [f32])| {
            let a_row = &a.data()[r * k..(r + 1) * k];
            for (c, o) in out_row.iter_mut().enumerate() {
                *o = b.dot_q8(self.row(c), self.scales[c], a_row);
            }
        };
        if m * n * k >= tune::PAR_FLOP_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.chunks_mut(n).enumerate().for_each(body);
        }
        Matrix::from_vec(m, n, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Pcg32::seed(seed);
        Matrix::randn(rows, cols, 0.5, &mut rng)
    }

    #[test]
    fn round_trip_error_is_within_half_step() {
        let m = random_matrix(6, 37, 1);
        let q = QuantizedMatrix::quantize(&m);
        let deq = q.dequantize();
        for r in 0..m.rows() {
            let half_step = q.scale(r) * 0.5 + 1e-12;
            for (a, b) in m.row(r).iter().zip(deq.row(r)) {
                assert!(
                    (a - b).abs() <= half_step,
                    "row {r}: {a} vs {b} exceeds half step {half_step}"
                );
            }
        }
    }

    #[test]
    fn requantize_reproduces_codes_exactly() {
        let m = random_matrix(5, 64, 2);
        let q = QuantizedMatrix::quantize(&m);
        let q2 = QuantizedMatrix::quantize(&q.dequantize());
        assert_eq!(q.data(), q2.data(), "int8 codes must be requantize-stable");
        for (a, b) in q.scales().iter().zip(q2.scales()) {
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1e-30));
        }
    }

    #[test]
    fn zero_rows_get_zero_scale() {
        let m = Matrix::zeros(3, 8);
        let q = QuantizedMatrix::quantize(&m);
        assert!(q.scales().iter().all(|&s| s == 0.0));
        assert!(q.data().iter().all(|&d| d == 0));
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn matvec_matches_dequantized_matvec() {
        let m = random_matrix(9, 33, 3);
        let q = QuantizedMatrix::quantize(&m);
        let mut rng = Pcg32::seed(4);
        let x: Vec<f32> = (0..33).map(|_| rng.normal()).collect();
        let got = q.matvec(&x).unwrap();
        let want = q.dequantize().matvec(&x).unwrap();
        let x_norm: f32 = x.iter().map(|v| v.abs()).sum();
        for (r, (g, w)) in got.iter().zip(&want).enumerate() {
            // Same codes, same activations: only summation order differs.
            let tol = 1e-5 * q.scale(r) * 127.0 * x_norm + 1e-6;
            assert!((g - w).abs() <= tol, "row {r}: {g} vs {w}");
        }
    }

    #[test]
    fn matmul_bt_rows_are_bitwise_matvec() {
        let w = QuantizedMatrix::quantize(&random_matrix(11, 48, 5));
        let a = random_matrix(4, 48, 6);
        let out = w.matmul_bt(&a).unwrap();
        for r in 0..a.rows() {
            let single = w.matvec(a.row(r)).unwrap();
            assert_eq!(out.row(r), single.as_slice(), "row {r} drifted");
        }
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let q = QuantizedMatrix::quantize(&random_matrix(3, 7, 7));
        let rebuilt =
            QuantizedMatrix::from_parts(q.rows(), q.cols(), q.data().to_vec(), q.scales().to_vec())
                .unwrap();
        assert_eq!(rebuilt, q);
        assert!(QuantizedMatrix::from_parts(2, 3, vec![0; 5], vec![0.0; 2]).is_err());
        assert!(QuantizedMatrix::from_parts(2, 3, vec![0; 6], vec![0.0; 3]).is_err());
    }

    #[test]
    fn weights_bytes_counts_codes_and_scales() {
        let q = QuantizedMatrix::quantize(&random_matrix(4, 10, 8));
        assert_eq!(q.weights_bytes(), 4 * 10 + 4 * 4);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let q = QuantizedMatrix::quantize(&random_matrix(2, 5, 9));
        assert!(q.matvec(&[0.0; 4]).is_err());
        assert!(q.matmul_bt(&Matrix::zeros(2, 4)).is_err());
    }
}

//! Naive reference kernels, retained as differential-test oracles.
//!
//! These are the original straight-loop implementations the blocked kernels
//! in [`Matrix`] replaced. They are deliberately simple — one scalar
//! accumulator, no tiling, no parallelism — so their correctness is obvious
//! by inspection, and the property tests in `tests/proptests.rs` hold the
//! optimized kernels to them within a 1e-4 relative tolerance across random
//! shapes (including `m == 1` and non-multiple-of-block sizes).
//!
//! Nothing on a hot path calls into this module.

use crate::{Matrix, TensorError};

/// Naive `a · b` (triple loop, row-major accumulation).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "reference::matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, n) = (a.rows(), b.cols());
    let mut out = vec![0.0f32; m * n];
    for (r, out_row) in out.chunks_mut(n.max(1)).enumerate().take(m) {
        for (kk, &av) in a.row(r).iter().enumerate() {
            for (o, &bv) in out_row.iter_mut().zip(&b.data()[kk * n..(kk + 1) * n]) {
                *o += av * bv;
            }
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Naive `a · bᵀ` (dot product of row pairs).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != b.cols()`.
pub fn matmul_bt(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "reference::matmul_bt",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, n) = (a.rows(), b.rows());
    let mut out = vec![0.0f32; m * n];
    for (r, out_row) in out.chunks_mut(n.max(1)).enumerate().take(m) {
        for (c, o) in out_row.iter_mut().enumerate() {
            *o = a.row(r).iter().zip(b.row(c)).map(|(&x, &y)| x * y).sum();
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Naive `aᵀ · b` (accumulated rank-1 updates, serial).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.rows() != b.rows()`.
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.rows() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "reference::matmul_at",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0.0f32; m * n];
    for kk in 0..k {
        let b_row = b.row(kk);
        for (r, &av) in a.row(kk).iter().enumerate() {
            for (o, &bv) in out[r * n..(r + 1) * n].iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    Matrix::from_vec(m, n, out)
}

/// Naive element-by-element transpose.
#[must_use]
pub fn transpose(a: &Matrix) -> Matrix {
    Matrix::from_fn(a.cols(), a.rows(), |r, c| a.row(c)[r])
}

/// Naive `a · x` for a column vector `x` (one sequential dot per row).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a.cols() != x.len()`.
pub fn matvec(a: &Matrix, x: &[f32]) -> Result<Vec<f32>, TensorError> {
    if a.cols() != x.len() {
        return Err(TensorError::ShapeMismatch {
            op: "reference::matvec",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    Ok((0..a.rows())
        .map(|r| a.row(r).iter().zip(x).map(|(&w, &v)| w * v).sum())
        .collect())
}

/// Naive `xᵀ · a` for a row vector `x` (accumulated scaled rows).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != a.rows()`.
pub fn vecmat(x: &[f32], a: &Matrix) -> Result<Vec<f32>, TensorError> {
    if x.len() != a.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "reference::vecmat",
            lhs: (1, x.len()),
            rhs: a.shape(),
        });
    }
    let mut out = vec![0.0f32; a.cols()];
    for (r, &xv) in x.iter().enumerate() {
        for (o, &av) in out.iter_mut().zip(a.row(r)) {
            *o += xv * av;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    #[test]
    fn reference_matmul_known_result() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).expect("ok");
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).expect("ok");
        let c = matmul(&a, &b).expect("conformable");
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn reference_variants_agree_with_each_other() {
        let mut rng = Pcg32::seed(17);
        let a = Matrix::randn(5, 7, 1.0, &mut rng);
        let b = Matrix::randn(7, 4, 1.0, &mut rng);
        let direct = matmul(&a, &b).expect("ok");
        let via_bt = matmul_bt(&a, &transpose(&b)).expect("ok");
        let via_at = matmul_at(&transpose(&a), &b).expect("ok");
        assert!(direct.approx_eq(&via_bt, 1e-4));
        assert!(direct.approx_eq(&via_at, 1e-4));
    }

    #[test]
    fn reference_vector_paths_match_matmul() {
        let mut rng = Pcg32::seed(18);
        let w = Matrix::randn(6, 9, 1.0, &mut rng);
        let x: Vec<f32> = (0..9).map(|i| i as f32 * 0.25 - 1.0).collect();
        let mv = matvec(&w, &x).expect("ok");
        let col = Matrix::from_vec(9, 1, x.clone()).expect("ok");
        let full = matmul(&w, &col).expect("ok");
        assert_eq!(mv.len(), 6);
        for (a, b) in mv.iter().zip(full.data()) {
            assert!((a - b).abs() < 1e-5);
        }
        let y: Vec<f32> = (0..6).map(|i| 0.5 - i as f32 * 0.1).collect();
        let vm = vecmat(&y, &w).expect("ok");
        let row = Matrix::from_vec(1, 6, y).expect("ok");
        let full = matmul(&row, &w).expect("ok");
        for (a, b) in vm.iter().zip(full.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn reference_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_bt(&a, &Matrix::zeros(2, 4)).is_err());
        assert!(matmul_at(&a, &Matrix::zeros(3, 2)).is_err());
        assert!(matvec(&a, &[1.0]).is_err());
        assert!(vecmat(&[1.0], &a).is_err());
    }
}

//! Deterministic pseudo-random number generation.
//!
//! Reproducibility is a hard requirement for this repository: every table and
//! figure must come out identical on every run. To guarantee that without
//! depending on the platform behaviour of external RNG crates inside the
//! numerics core, this module implements the PCG-XSH-RR 64/32 generator
//! ([`Pcg32`]) — a small, statistically solid PRNG with a 64-bit state — plus
//! the sampling helpers the workspace needs (uniform floats, normal variates
//! via Box–Muller, integer ranges, shuffles, weighted choice).
//!
//! # Example
//!
//! ```
//! use chipalign_tensor::rng::Pcg32;
//!
//! let mut a = Pcg32::seed(7);
//! let mut b = Pcg32::seed(7);
//! assert_eq!(a.next_u32(), b.next_u32()); // same seed, same stream
//! let x = a.uniform();
//! assert!((0.0..1.0).contains(&x));
//! ```

/// PCG-XSH-RR 64/32: a fast, deterministic 32-bit PRNG with 64-bit state.
///
/// The implementation follows O'Neill's reference constants. A fixed stream
/// increment is used; distinct experiments should use distinct seeds (the
/// workspace derives them with [`Pcg32::derive`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_INC: u64 = 1442695040888963407;

impl Pcg32 {
    /// Creates a generator from a seed.
    ///
    /// Two generators created with the same seed produce identical streams.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        let mut rng = Pcg32 {
            state: seed.wrapping_add(PCG_INC),
        };
        // Warm up so that nearby seeds decorrelate quickly.
        rng.next_u32();
        rng.next_u32();
        rng
    }

    /// Derives a new independent generator from this one and a domain label.
    ///
    /// This is the workspace convention for splitting one experiment seed
    /// into per-component streams (tokenizer noise, weight init, data
    /// shuffling, ...) without the streams aliasing.
    #[must_use]
    pub fn derive(&self, label: u64) -> Self {
        // SplitMix64-style finalizer over (state, label).
        let mut z = self
            .state
            .wrapping_add(label.wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        Pcg32::seed(z ^ (z >> 31))
    }

    /// Returns the next 32 uniformly distributed random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(PCG_INC);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 uniformly distributed random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Samples a uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high-quality mantissa bits.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Samples a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a standard normal variate using the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        // Avoid log(0) by shifting the first uniform away from zero.
        let u1 = (self.uniform_f64()).max(1e-12);
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// Samples an integer uniformly from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Pcg32::below requires a positive bound");
        // Lemire-style rejection to remove modulo bias.
        let bound32 = u32::try_from(bound.min(u32::MAX as usize)).expect("bound fits u32");
        loop {
            let x = self.next_u32();
            let m = u64::from(x) * u64::from(bound32);
            let low = m as u32;
            if low >= bound32 && low < bound32.wrapping_neg() {
                // Fast accept path is the common case; fall through below.
            }
            if low >= (bound32.wrapping_neg() % bound32) {
                return (m >> 32) as usize;
            }
        }
    }

    /// Samples an integer uniformly from the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "Pcg32::range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(
            !slice.is_empty(),
            "Pcg32::choose requires a non-empty slice"
        );
        &slice[self.below(slice.len())]
    }

    /// Picks an index according to non-negative weights.
    ///
    /// Weights that are all zero degrade to a uniform choice. Zero-weight
    /// entries are never selected when any weight is positive: [`uniform`]
    /// can return exactly `0.0` (probability 2⁻²⁴), and a naive
    /// `target -= w; if target <= 0.0` scan would then land on index 0 even
    /// with `weights[0] == 0.0` — emitting a token that top-k/top-p had
    /// truncated away. The scan therefore only stops on entries with
    /// strictly positive weight.
    ///
    /// [`uniform`]: Pcg32::uniform
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn choose_weighted(&mut self, weights: &[f32]) -> usize {
        assert!(
            !weights.is_empty(),
            "Pcg32::choose_weighted requires a non-empty weight list"
        );
        let total: f32 = weights.iter().map(|w| w.max(0.0)).sum();
        if total <= 0.0 {
            return self.below(weights.len());
        }
        let mut target = self.uniform() * total;
        let mut last_positive = None;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if w <= 0.0 {
                continue;
            }
            last_positive = Some(i);
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        // Float rounding can leave a sliver of `target`; fall back to the
        // last positive-weight index (which exists because `total > 0`).
        last_positive.expect("total > 0 implies at least one positive weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = Pcg32::seed(123);
        let mut b = Pcg32::seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::seed(1);
        let mut b = Pcg32::seed(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams from nearby seeds should not track");
    }

    #[test]
    fn derive_is_deterministic_and_independent() {
        let root = Pcg32::seed(99);
        let mut a = root.derive(1);
        let mut a2 = root.derive(1);
        let mut b = root.derive(2);
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Pcg32::seed(5);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = Pcg32::seed(6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| f64::from(rng.uniform())).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| f64::from(rng.normal())).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut rng = Pcg32::seed(8);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let k = rng.below(7);
            assert!(k < 7);
            seen[k] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues should occur");
    }

    #[test]
    fn range_inclusive() {
        let mut rng = Pcg32::seed(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let k = rng.range(3, 6);
            assert!((3..=6).contains(&k));
            lo_seen |= k == 3;
            hi_seen |= k == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seed(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_weighted_prefers_heavy_weight() {
        let mut rng = Pcg32::seed(11);
        let weights = [0.0, 0.9, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 4);
    }

    #[test]
    fn choose_weighted_skips_zero_weight_at_uniform_boundary() {
        // This seed was constructed by inverting the PCG transition so the
        // first `uniform()` draw after seeding is exactly 0.0 — the boundary
        // where the pre-fix scan returned index 0 even though its weight is
        // zero.
        let mut rng = Pcg32::seed(17_830_730_530_297_459_791);
        assert_eq!(rng.uniform(), 0.0, "seed must hit the uniform() boundary");
        let mut rng = Pcg32::seed(17_830_730_530_297_459_791);
        let weights = [0.0, 0.25, 0.75];
        assert_eq!(
            rng.choose_weighted(&weights),
            1,
            "a zero-weight leading entry must never be selected"
        );
        // And never over a longer run either.
        let mut rng = Pcg32::seed(17_830_730_530_297_459_791);
        for _ in 0..10_000 {
            assert_ne!(rng.choose_weighted(&weights), 0);
        }
    }

    #[test]
    fn choose_weighted_all_zero_is_uniform() {
        let mut rng = Pcg32::seed(12);
        let weights = [0.0; 4];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        for c in counts {
            assert!(c > 700, "expected roughly uniform counts, got {counts:?}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::seed(13);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}

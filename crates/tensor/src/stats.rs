//! Scalar statistics over weight matrices.
//!
//! Geodesic merging needs two geometric quantities per weight: the cosine
//! similarity between the Frobenius-normalised matrices and the resulting
//! interpolation angle `Θ`. This module also provides a compact
//! [`WeightSummary`] used by merge reports and debugging output.
//!
//! # Example
//!
//! ```
//! use chipalign_tensor::{Matrix, stats};
//!
//! # fn main() -> Result<(), chipalign_tensor::TensorError> {
//! let a = Matrix::from_vec(1, 2, vec![1.0, 0.0])?;
//! let b = Matrix::from_vec(1, 2, vec![0.0, 1.0])?;
//! let theta = stats::interpolation_angle(&a, &b)?;
//! assert!((theta - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

use crate::{Matrix, TensorError};

/// Cosine similarity between two matrices viewed as flat vectors.
///
/// Returns 0 when either matrix has zero norm (the two points are not both on
/// the sphere, so no angle is defined; 0 is the conventional neutral value).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn cosine_similarity(a: &Matrix, b: &Matrix) -> Result<f64, TensorError> {
    let dot = a.frobenius_dot(b)?;
    let na = f64::from(a.frobenius_norm());
    let nb = f64::from(b.frobenius_norm());
    if na == 0.0 || nb == 0.0 {
        return Ok(0.0);
    }
    Ok((dot / (na * nb)).clamp(-1.0, 1.0))
}

/// The geodesic interpolation angle `Θ = arccos⟨Ā, B̄⟩` between the
/// unit-sphere projections of two weight matrices, in radians.
///
/// This is exactly the `Θ` of Lemma III.2 in the ChipAlign paper.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn interpolation_angle(a: &Matrix, b: &Matrix) -> Result<f64, TensorError> {
    Ok(cosine_similarity(a, b)?.acos())
}

/// A compact numerical summary of one weight matrix.
///
/// Produced for merge reports so that per-layer geometry (norms, extremes)
/// can be inspected without holding the weights themselves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightSummary {
    /// Shape as `(rows, cols)`.
    pub shape: (usize, usize),
    /// Frobenius norm.
    pub frobenius_norm: f32,
    /// Mean element value.
    pub mean: f32,
    /// Largest absolute element.
    pub max_abs: f32,
}

impl WeightSummary {
    /// Summarises a matrix.
    ///
    /// An empty matrix yields a zero summary rather than an error, because
    /// summaries are diagnostics and should never abort a merge.
    #[must_use]
    pub fn of(m: &Matrix) -> Self {
        WeightSummary {
            shape: m.shape(),
            frobenius_norm: m.frobenius_norm(),
            mean: m.mean().unwrap_or(0.0),
            max_abs: m.max_abs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_parallel_is_one() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).expect("ok");
        let b = a.scale(2.5);
        let cos = cosine_similarity(&a, &b).expect("same shape");
        // Norms are computed from f32 inputs, so allow single-precision slack.
        assert!((cos - 1.0).abs() < 1e-6);
        assert!(interpolation_angle(&a, &b).expect("same shape") < 2e-3);
    }

    #[test]
    fn cosine_of_antiparallel_is_minus_one() {
        let a = Matrix::ones(2, 2);
        let b = a.scale(-1.0);
        let cos = cosine_similarity(&a, &b).expect("same shape");
        assert!((cos + 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_with_zero_matrix_is_zero() {
        let a = Matrix::ones(2, 2);
        let z = Matrix::zeros(2, 2);
        assert_eq!(cosine_similarity(&a, &z).expect("same shape"), 0.0);
    }

    #[test]
    fn angle_orthogonal() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 0.0]).expect("ok");
        let b = Matrix::from_vec(1, 2, vec![0.0, 1.0]).expect("ok");
        let theta = interpolation_angle(&a, &b).expect("same shape");
        assert!((theta - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn shape_mismatch_propagates() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert!(cosine_similarity(&a, &b).is_err());
        assert!(interpolation_angle(&a, &b).is_err());
    }

    #[test]
    fn summary_values() {
        let m = Matrix::from_vec(1, 2, vec![3.0, -4.0]).expect("ok");
        let s = WeightSummary::of(&m);
        assert_eq!(s.shape, (1, 2));
        assert!((s.frobenius_norm - 5.0).abs() < 1e-6);
        assert_eq!(s.max_abs, 4.0);
        assert!((s.mean + 0.5).abs() < 1e-6);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = WeightSummary::of(&Matrix::zeros(0, 3));
        assert_eq!(s.frobenius_norm, 0.0);
        assert_eq!(s.mean, 0.0);
    }
}

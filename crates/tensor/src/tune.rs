//! Kernel tuning knobs: every block size and dispatch threshold used by the
//! dense kernels in [`crate::Matrix`], in one place.
//!
//! The values below were chosen for the small-to-medium matrices this
//! workspace actually multiplies (embedding tables up to a few hundred rows,
//! `d_model`-sized projections, `seq × seq` attention scores) running on
//! ordinary x86-64/aarch64 cores. They are compile-time constants rather
//! than runtime configuration so the optimizer can fully unroll the tiled
//! inner loops; changing them only requires re-running
//! `cargo run -p chipalign-bench --bin bench_kernels` to re-baseline.

use std::sync::atomic::{AtomicU64, Ordering};

/// Minimum `m · n · k` multiply-accumulate count before a GEMM-family kernel
/// parallelises across output rows with rayon.
///
/// Below this, the rayon fork/join overhead (~microseconds) exceeds the work
/// itself; above it, row-parallelism is embarrassingly parallel because each
/// output row is written by exactly one task.
pub const PAR_FLOP_THRESHOLD: usize = 32 * 1024;

/// Width (in `f32` elements) of the fixed output-column tile used by the
/// `A·B` and `Aᵀ·B` kernels.
///
/// Each tile's partial sums live in a stack array of this size, which the
/// compiler keeps in vector registers across the whole `k` loop — the store
/// to the output row happens once per tile instead of once per
/// multiply-accumulate. 16 floats = one 512-bit or two 256-bit vectors.
pub const GEMM_COL_TILE: usize = 16;

/// Depth of the `k`-panel used by the `A·Bᵀ` kernel.
///
/// A panel of the left-hand row this long (1 KiB) stays L1-resident while it
/// is dotted against every row of `B`, so large-`k` products stream `B`
/// once per panel instead of thrashing the cache once per output element.
pub const GEMM_K_BLOCK: usize = 256;

/// Number of independent partial-sum lanes used by the blocked dot product.
///
/// Splitting the reduction into this many accumulators breaks the serial
/// floating-point dependency chain so the loop vectorises; 8 lanes = one
/// 256-bit vector of `f32`.
pub const DOT_LANES: usize = 8;

/// Largest left-hand row count `m` routed to the skinny `A·Bᵀ` kernel
/// (`2 ≤ m ≤ GEMM_SKINNY_M_MAX`; `m == 1` already takes the matvec path).
///
/// Batched decode stacks one hidden-state row per session, so its
/// projections are exactly this tall-skinny shape. The skinny kernel dots
/// whole rows with no [`GEMM_K_BLOCK`] panel split, which (a) accumulates
/// every output element in the same order as [`crate::Matrix::matvec`] —
/// the invariant that keeps batched decode bit-identical to per-session
/// decode at any `k` — and (b) writes each output element once instead of
/// once per k-panel, which is all the panelling buys when the whole
/// left-hand side is at most 32 rows. 32 also bounds the decode batch the
/// serve scheduler will form (`max_batch` is clamped to it upstream).
pub const GEMM_SKINNY_M_MAX: usize = 32;

/// Side length of the square tiles used by the blocked transpose.
///
/// A 32×32 `f32` tile is 4 KiB — both the row-major reads and the
/// column-major writes of one tile fit in L1 simultaneously.
pub const TRANSPOSE_BLOCK: usize = 32;

/// Number of independent 8-lane FMA accumulators in the explicit-SIMD dot
/// kernel (so the main loop consumes `8 × SIMD_DOT_UNROLL` elements per
/// iteration).
///
/// FMA latency on current x86 cores is 4–5 cycles at 2/cycle throughput;
/// four in-flight accumulators are enough to hide the chain, and more
/// would only lengthen the horizontal reduction at the end.
pub const SIMD_DOT_UNROLL: usize = 4;

/// Largest magnitude an int8 quantization code may take (symmetric range
/// `[-127, 127]`; -128 is deliberately unused so every code has an exact
/// negation).
///
/// Kept as `f32` because it only ever appears in the scale computation
/// (`scale = max|row| / QUANT_MAX`) and the pre-cast clamp.
pub const QUANT_MAX: f32 = 127.0;

/// Process-wide count of matrix–vector fast-path invocations
/// ([`crate::Matrix::matvec`] and [`crate::Matrix::vecmat`], including the
/// `m == 1`/`n == 1` dispatches inside the matmul family).
static MATVEC_CALLS: AtomicU64 = AtomicU64::new(0);

/// Records one matrix–vector fast-path hit. Relaxed ordering: the counter is
/// a monotonic diagnostic, never a synchronisation point.
pub(crate) fn note_matvec() {
    MATVEC_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Returns the number of matrix–vector fast-path invocations since process
/// start.
///
/// The counter is monotonic and process-wide; tests assert deltas (`after -
/// before >= expected`) rather than absolute values so they stay correct
/// when other threads decode concurrently. This is how the KV-cached decode
/// path in `chipalign-nn` proves it really runs on the matvec kernel.
#[must_use]
pub fn matvec_calls() -> u64 {
    MATVEC_CALLS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_sane() {
        assert!(GEMM_COL_TILE.is_power_of_two());
        assert!(DOT_LANES.is_power_of_two());
        assert!(GEMM_K_BLOCK >= GEMM_COL_TILE);
        assert!(GEMM_SKINNY_M_MAX >= 2);
        assert!(GEMM_SKINNY_M_MAX.is_power_of_two());
        assert!(TRANSPOSE_BLOCK >= 8);
        assert!(PAR_FLOP_THRESHOLD > GEMM_COL_TILE * GEMM_K_BLOCK);
        assert!(SIMD_DOT_UNROLL.is_power_of_two());
        assert!(SIMD_DOT_UNROLL * 8 <= GEMM_K_BLOCK);
        assert!(QUANT_MAX == 127.0, "i8 symmetric range is fixed");
    }

    #[test]
    fn matvec_counter_is_monotonic() {
        let before = matvec_calls();
        note_matvec();
        note_matvec();
        assert!(matvec_calls() >= before + 2);
    }
}

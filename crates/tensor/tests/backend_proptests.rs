//! Property-based backend-equivalence tests.
//!
//! The kernel backends (scalar reference, blocked autovectorized, explicit
//! AVX2/FMA) are free to reassociate floating-point sums, so they are held
//! to each other at 1e-4 relative tolerance — the same bound the blocked
//! kernels already owe the naive references — across random shapes,
//! deliberately non-lane-multiple lengths, and the tall-skinny
//! batched-decode shapes (`2 ≤ m ≤ 32`). The int8 path gets the same
//! treatment: quantization round-trip bounds, requantize stability of the
//! codes, and int8 kernels vs the dequantized f32 oracle within the
//! analytic error bound.
//!
//! On machines without AVX2/FMA the SIMD tier falls back to the blocked
//! kernels, so these properties hold (trivially for that pair) everywhere.

use chipalign_tensor::backend::{self, KernelBackend};
use chipalign_tensor::rng::Pcg32;
use chipalign_tensor::{Matrix, QuantizedMatrix};
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Pcg32::seed(seed);
    Matrix::randn(rows, cols, 1.0, &mut rng)
}

fn vecf(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Pcg32::seed(seed);
    (0..n).map(|_| rng.normal()).collect()
}

/// `|a - b| <= 1e-4 · max(|b|, 1)` — the documented cross-backend bound.
fn close_rel(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 * b.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_agrees_across_backends(seed in 0u64..1000, n in 1usize..200) {
        // n sweeps through scalar tails, exact lane multiples, and the SIMD
        // kernel's 32-wide main-loop boundary.
        let a = vecf(n, seed);
        let b = vecf(n, seed.wrapping_add(1));
        let reference = backend::SCALAR.dot(&a, &b);
        for be in backend::all() {
            prop_assert!(
                close_rel(be.dot(&a, &b), reference),
                "{} dot drifted at n={}", be.name(), n
            );
        }
    }

    #[test]
    fn dot_agrees_on_non_lane_multiples(seed in 0u64..1000, chunks in 0usize..6, tail in 1usize..8) {
        // Lengths that are never a multiple of 8: every backend must get
        // its remainder handling right.
        let n = chunks * 8 + tail;
        prop_assume!(n % 8 != 0);
        let a = vecf(n, seed);
        let b = vecf(n, seed.wrapping_add(1));
        let reference = backend::SCALAR.dot(&a, &b);
        for be in backend::all() {
            prop_assert!(close_rel(be.dot(&a, &b), reference));
        }
    }

    #[test]
    fn gemm_row_agrees_across_backends(seed in 0u64..1000, k in 1usize..70, n in 1usize..40) {
        let a_row = vecf(k, seed);
        let b = vecf(k * n, seed.wrapping_add(1));
        let mut reference = vec![0.0f32; n];
        backend::SCALAR.gemm_row(&a_row, &b, n, &mut reference);
        for be in backend::all() {
            let mut got = vec![0.0f32; n];
            be.gemm_row(&a_row, &b, n, &mut got);
            for (g, r) in got.iter().zip(&reference) {
                prop_assert!(
                    close_rel(*g, *r),
                    "{} gemm_row drifted at k={} n={}", be.name(), k, n
                );
            }
        }
    }

    #[test]
    fn skinny_matmul_bt_agrees_across_backends(seed in 0u64..1000, m in 2usize..=32, k in 1usize..120, n in 1usize..16) {
        // The batched-decode shape, computed end-to-end per backend by
        // driving each backend's dot through the whole-row formulation the
        // skinny kernel uses.
        let a = mat(m, k, seed);
        let b = mat(n, k, seed.wrapping_add(1));
        for be in backend::all() {
            for r in 0..m {
                for c in 0..n {
                    let got = be.dot(a.row(r), b.row(c));
                    let reference = backend::SCALAR.dot(a.row(r), b.row(c));
                    prop_assert!(
                        close_rel(got, reference),
                        "{} skinny element ({r},{c}) drifted at m={} k={}", be.name(), m, k
                    );
                }
            }
        }
    }

    #[test]
    fn dot_q8_agrees_across_backends(seed in 0u64..1000, n in 1usize..200) {
        let w = QuantizedMatrix::quantize(&mat(1, n, seed));
        let x = vecf(n, seed.wrapping_add(1));
        let reference = backend::SCALAR.dot_q8(w.row(0), w.scale(0), &x);
        for be in backend::all() {
            prop_assert!(
                close_rel(be.dot_q8(w.row(0), w.scale(0), &x), reference),
                "{} dot_q8 drifted at n={}", be.name(), n
            );
        }
    }

    #[test]
    fn quantize_round_trip_is_within_half_step(seed in 0u64..1000, rows in 1usize..12, cols in 1usize..48) {
        let m = mat(rows, cols, seed);
        let q = QuantizedMatrix::quantize(&m);
        let deq = q.dequantize();
        for r in 0..rows {
            let half_step = q.scale(r) * 0.5 + 1e-12;
            for (a, b) in m.row(r).iter().zip(deq.row(r)) {
                prop_assert!((a - b).abs() <= half_step);
            }
        }
    }

    #[test]
    fn requantize_is_code_stable(seed in 0u64..1000, rows in 1usize..10, cols in 1usize..40) {
        // The i8 codes survive dequantize∘quantize exactly; the scales can
        // drift by an ulp (which is why checkpoint loads use from_parts).
        let q = QuantizedMatrix::quantize(&mat(rows, cols, seed));
        let q2 = QuantizedMatrix::quantize(&q.dequantize());
        prop_assert_eq!(q.data(), q2.data());
        for (a, b) in q.scales().iter().zip(q2.scales()) {
            prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(1e-30));
        }
    }

    #[test]
    fn quant_matvec_tracks_f32_oracle(seed in 0u64..1000, rows in 1usize..20, cols in 1usize..64) {
        // Against the *dequantized* oracle the only difference is summation
        // order; against the original f32 matrix the quantization error is
        // bounded by (scale/2)·Σ|x| per row.
        let m = mat(rows, cols, seed);
        let q = QuantizedMatrix::quantize(&m);
        let x = vecf(cols, seed.wrapping_add(1));
        let got = q.matvec(&x).unwrap();
        let oracle = q.dequantize().matvec(&x).unwrap();
        let x_abs_sum: f32 = x.iter().map(|v| v.abs()).sum();
        for (r, (g, o)) in got.iter().zip(&oracle).enumerate() {
            let order_tol = 1e-4 * o.abs().max(1.0);
            prop_assert!((g - o).abs() <= order_tol, "row {} vs dequantized oracle", r);
            let full = m.matvec(&x).unwrap()[r];
            let quant_tol = q.scale(r) * 0.5 * x_abs_sum + order_tol + 1e-5;
            prop_assert!((g - full).abs() <= quant_tol, "row {} vs f32 matrix", r);
        }
    }

    #[test]
    fn quant_matmul_bt_rows_equal_quant_matvec_bitwise(seed in 0u64..1000, m in 2usize..=32, k in 1usize..80, n in 1usize..12) {
        // The quantized twin of the skinny-GEMM bit-identity invariant:
        // batching activation rows must not change any row's bits.
        let w = QuantizedMatrix::quantize(&mat(n, k, seed));
        let a = mat(m, k, seed.wrapping_add(1));
        let batched = w.matmul_bt(&a).unwrap();
        for r in 0..m {
            let single = w.matvec(a.row(r)).unwrap();
            prop_assert_eq!(batched.row(r), &single[..]);
        }
    }
}

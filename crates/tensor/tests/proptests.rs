//! Property-based tests for the tensor substrate.
//!
//! These check algebraic invariants that the unit tests only probe pointwise:
//! matmul associativity/distributivity, norm homogeneity, Cauchy–Schwarz,
//! and the triangle inequality — each of which the merging math silently
//! relies on.

use chipalign_tensor::rng::Pcg32;
use chipalign_tensor::{reference, stats, Matrix};
use proptest::prelude::*;

/// Builds a deterministic random matrix from a proptest-chosen seed.
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Pcg32::seed(seed);
    Matrix::randn(rows, cols, 1.0, &mut rng)
}

/// `|a - b| <= 1e-4 · max(|b|, 1)` elementwise — the documented tolerance the
/// blocked kernels are held to against the naive references.
fn close_rel(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&x, &y)| (x - y).abs() <= 1e-4 * y.abs().max(1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed.wrapping_add(1));
        let c = mat(k, n, seed.wrapping_add(2));
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_associates(seed in 0u64..1000, m in 1usize..5, k in 1usize..5, l in 1usize..5, n in 1usize..5) {
        let a = mat(m, k, seed);
        let b = mat(k, l, seed.wrapping_add(1));
        let c = mat(l, n, seed.wrapping_add(2));
        let lhs = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn transpose_reverses_matmul(seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed.wrapping_add(1));
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn frobenius_norm_is_homogeneous(seed in 0u64..1000, s in -4.0f32..4.0) {
        let a = mat(3, 4, seed);
        let scaled = a.scale(s);
        let expected = a.frobenius_norm() * s.abs();
        prop_assert!((scaled.frobenius_norm() - expected).abs() < 1e-3 * (1.0 + expected));
    }

    #[test]
    fn cauchy_schwarz(seed in 0u64..1000) {
        let a = mat(4, 4, seed);
        let b = mat(4, 4, seed.wrapping_add(1));
        let dot = a.frobenius_dot(&b).unwrap().abs();
        let bound = f64::from(a.frobenius_norm()) * f64::from(b.frobenius_norm());
        prop_assert!(dot <= bound * (1.0 + 1e-5));
    }

    #[test]
    fn triangle_inequality(seed in 0u64..1000) {
        let a = mat(5, 3, seed);
        let b = mat(5, 3, seed.wrapping_add(1));
        let sum_norm = a.add(&b).unwrap().frobenius_norm();
        prop_assert!(sum_norm <= a.frobenius_norm() + b.frobenius_norm() + 1e-4);
    }

    #[test]
    fn cosine_similarity_bounded(seed in 0u64..1000) {
        let a = mat(3, 5, seed);
        let b = mat(3, 5, seed.wrapping_add(1));
        let cos = stats::cosine_similarity(&a, &b).unwrap();
        prop_assert!((-1.0..=1.0).contains(&cos));
        let theta = stats::interpolation_angle(&a, &b).unwrap();
        prop_assert!((0.0..=std::f64::consts::PI).contains(&theta));
    }

    #[test]
    fn lerp_stays_between_endpoint_norms(seed in 0u64..1000, t in 0.0f32..=1.0) {
        let a = mat(4, 4, seed);
        let b = mat(4, 4, seed.wrapping_add(1));
        let l = a.lerp(&b, t).unwrap();
        // Convexity: ||lerp|| <= max endpoint norm (plus fp slack).
        let bound = a.frobenius_norm().max(b.frobenius_norm());
        prop_assert!(l.frobenius_norm() <= bound + 1e-4);
    }

    #[test]
    fn blocked_matmul_matches_reference(seed in 0u64..1000, m in 1usize..40, k in 1usize..70, n in 1usize..40) {
        // Ranges deliberately straddle GEMM_COL_TILE (16) and DOT_LANES (8)
        // multiples, and m == 1 hits the vecmat dispatch.
        let a = mat(m, k, seed);
        let b = mat(k, n, seed.wrapping_add(1));
        let fast = a.matmul(&b).unwrap();
        let slow = reference::matmul(&a, &b).unwrap();
        prop_assert!(close_rel(fast.data(), slow.data()));
    }

    #[test]
    fn blocked_matmul_bt_matches_reference(seed in 0u64..1000, m in 1usize..40, k in 1usize..70, n in 1usize..40) {
        let a = mat(m, k, seed);
        let b = mat(n, k, seed.wrapping_add(1));
        let fast = a.matmul_bt(&b).unwrap();
        let slow = reference::matmul_bt(&a, &b).unwrap();
        prop_assert!(close_rel(fast.data(), slow.data()));
    }

    #[test]
    fn skinny_matmul_bt_matches_reference(seed in 0u64..1000, m in 2usize..=32, k in 1usize..300, n in 1usize..24) {
        // The batched-decode shape: tall-skinny A, with k crossing
        // GEMM_K_BLOCK so the skinny dispatch (not the panelled kernel) is
        // what gets exercised at large depth.
        let a = mat(m, k, seed);
        let b = mat(n, k, seed.wrapping_add(1));
        let fast = a.matmul_bt(&b).unwrap();
        let slow = reference::matmul_bt(&a, &b).unwrap();
        prop_assert!(close_rel(fast.data(), slow.data()));
    }

    #[test]
    fn skinny_matmul_bt_rows_equal_matvec_bitwise(seed in 0u64..1000, m in 2usize..=32, k in 200usize..300, n in 1usize..16) {
        // Bit-identity, not tolerance: stacking rows into one GEMM must not
        // change any row's accumulation order relative to matvec. Batched
        // decode equivalence in chipalign-nn is built on exactly this.
        let a = mat(m, k, seed);
        let b = mat(n, k, seed.wrapping_add(1));
        let batched = a.matmul_bt(&b).unwrap();
        for r in 0..m {
            let single = b.matvec(a.row(r)).unwrap();
            prop_assert_eq!(batched.row(r), &single[..]);
        }
    }

    #[test]
    fn blocked_matmul_at_matches_reference(seed in 0u64..1000, k in 1usize..70, m in 1usize..40, n in 1usize..40) {
        let a = mat(k, m, seed);
        let b = mat(k, n, seed.wrapping_add(1));
        let fast = a.matmul_at(&b).unwrap();
        let slow = reference::matmul_at(&a, &b).unwrap();
        prop_assert!(close_rel(fast.data(), slow.data()));
    }

    #[test]
    fn single_row_matmul_matches_reference(seed in 0u64..1000, k in 1usize..300, n in 1usize..40) {
        // The m == 1 decode shape, with k crossing GEMM_K_BLOCK-free and
        // lane-remainder territory.
        let a = mat(1, k, seed);
        let b = mat(k, n, seed.wrapping_add(1));
        let fast = a.matmul(&b).unwrap();
        let slow = reference::matmul(&a, &b).unwrap();
        prop_assert!(close_rel(fast.data(), slow.data()));
    }

    #[test]
    fn matvec_and_vecmat_match_reference(seed in 0u64..1000, rows in 1usize..60, cols in 1usize..60) {
        let w = mat(rows, cols, seed);
        let x = mat(1, cols, seed.wrapping_add(1));
        let fast = w.matvec(x.data()).unwrap();
        let slow = reference::matvec(&w, x.data()).unwrap();
        prop_assert!(close_rel(&fast, &slow));
        let y = mat(1, rows, seed.wrapping_add(2));
        let fast = w.vecmat(y.data()).unwrap();
        let slow = reference::vecmat(y.data(), &w).unwrap();
        prop_assert!(close_rel(&fast, &slow));
    }

    #[test]
    fn blocked_transpose_matches_reference(seed in 0u64..1000, rows in 1usize..80, cols in 1usize..80) {
        let a = mat(rows, cols, seed);
        let fast = a.transpose();
        let slow = reference::transpose(&a);
        prop_assert!(fast == slow);
    }

    #[test]
    fn axpy_matches_scale_add(seed in 0u64..1000, alpha in -3.0f32..3.0) {
        let a = mat(3, 3, seed);
        let b = mat(3, 3, seed.wrapping_add(1));
        let mut fast = a.clone();
        fast.axpy(alpha, &b).unwrap();
        let slow = a.add(&b.scale(alpha)).unwrap();
        prop_assert!(fast.approx_eq(&slow, 1e-5));
    }
}

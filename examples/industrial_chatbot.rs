//! Multi-turn industrial chip QA scenario: the Table 2 evaluation loop as
//! an interactive transcript — single turn, then a follow-up that replays
//! the model's own first answer as history, graded by the deterministic
//! rubric.
//!
//! ```text
//! cargo run --release --example industrial_chatbot
//! ```

use chipalign::data::industrial::IndustrialBenchmark;
use chipalign::eval::grader::Rubric;
use chipalign::eval::ifeval::Instruction;
use chipalign::pipeline::evalkit::respond;
use chipalign::pipeline::zoo::{Quality, Zoo, ZooConfig, ZooModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed: 3,
        cache_dir: None,
    })?;
    println!("training the large-backbone ChipNeMo stand-in at smoke scale...");
    let chipnemo = zoo.model(ZooModel::ChipNemo)?;

    let bench = IndustrialBenchmark::generate(3);
    let question = &bench.questions[0];
    let rubric = Rubric::default();
    let instructions: Vec<Instruction> =
        question.tags.iter().map(|t| t.instruction()).collect();

    println!("\n--- turn 1 ({}) ---", question.category.label());
    println!("engineer : {}", question.question);
    println!("context  : {}", question.context);
    let first = respond(&chipnemo, &question.prompt())?;
    let g1 = rubric.grade(&first, &question.golden, &question.context, &instructions);
    println!("assistant: {first}");
    println!(
        "grade    : {} (content {:.2}, grounding {:.2}, compliance {:.2})",
        g1.score, g1.content, g1.grounding, g1.compliance
    );

    println!("\n--- turn 2 (follow-up) ---");
    println!("engineer : {}", question.followup_question);
    let second = respond(&chipnemo, &question.followup_prompt(&first))?;
    let g2 = rubric.grade(&second, &question.followup_golden, &question.context, &[]);
    println!("assistant: {second}");
    println!("grade    : {}", g2.score);
    println!("golden   : {}", question.followup_golden);
    Ok(())
}

//! Sweep the interpolation coefficient λ across `[0, 1]` (Lemma III.2's
//! continuum of models) and inspect how the merged weights move between
//! the two endpoints.
//!
//! ```text
//! cargo run --release --example lambda_sweep
//! ```

use chipalign::merge::sweep::{lambda_grid, lambda_sweep};
use chipalign::merge::GeodesicMerge;
use chipalign::model::{ArchSpec, Checkpoint};
use chipalign::tensor::rng::Pcg32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = ArchSpec {
        name: "sweep-demo".into(),
        vocab_size: 99,
        d_model: 48,
        n_layers: 2,
        n_heads: 4,
        d_ff: 96,
        max_seq_len: 128,
    };
    // A "chip" model with noticeably larger weights than the "instruct"
    // model, so the geometric-mean norm restoration is visible.
    let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(10));
    let chip = instruct.map_tensors(|_, t| {
        let mut rng = Pcg32::seed(11);
        let noise = chipalign::tensor::Matrix::randn(t.rows(), t.cols(), 0.05, &mut rng);
        t.scale(1.5).add(&noise).expect("same shape")
    });

    println!("lambda   |merged|   dist->instruct   dist->chip");
    for point in lambda_sweep(&chip, &instruct, &lambda_grid(11))? {
        let dist = |a: &Checkpoint, b: &Checkpoint| -> f64 {
            a.iter()
                .map(|(n, t)| {
                    let d = t.sub(b.get(n).expect("conformable")).expect("same shape");
                    f64::from(d.frobenius_norm()).powi(2)
                })
                .sum::<f64>()
                .sqrt()
        };
        println!(
            "{:>5.2} {:>10.4} {:>16.4} {:>12.4}",
            point.lambda,
            point.model.global_norm(),
            dist(&point.model, &instruct),
            dist(&point.model, &chip),
        );
    }

    // Per-tensor geometry at the paper's recommended point.
    let (_, report) = GeodesicMerge::recommended().merge_with_report(&chip, &instruct)?;
    println!(
        "\nat lambda = 0.6: mean angle {:.4} rad, max {:.4} rad ({})",
        report.mean_angle(),
        report.max_angle().map_or(0.0, |t| t.theta),
        report.max_angle().map_or("-".into(), |t| t.name.clone()),
    );
    Ok(())
}

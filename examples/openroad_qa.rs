//! End-to-end OpenROAD-QA scenario on a freshly trained (smoke-scale)
//! model zoo: train base → instruct → EDA, merge with ChipAlign, and
//! answer a retrieval-augmented, instruction-carrying question with all
//! three models — the Figure 5 workflow in miniature.
//!
//! Uses smoke-quality training so it finishes in well under a minute; for
//! paper-quality responses run the `fig5_qualitative` bench binary against
//! the cached zoo.
//!
//! ```text
//! cargo run --release --example openroad_qa
//! ```

use chipalign::data::openroad::OpenRoadBenchmark;
use chipalign::eval::rouge::rouge_l;
use chipalign::pipeline::evalkit::respond;
use chipalign::pipeline::experiments::merged_variants;
use chipalign::pipeline::zoo::{Backbone, Quality, Zoo, ZooConfig, ZooModel};
use chipalign::rag::{Chunker, Retriever};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo = Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed: 7,
        cache_dir: None,
    })?;
    let backbone = Backbone::LlamaTiny;
    println!("training the {} chain at smoke scale...", backbone.paper_name());
    let instruct = zoo.model(ZooModel::Instruct(backbone))?;
    let eda = zoo.model(ZooModel::Eda(backbone))?;
    let chipalign = merged_variants(&zoo, backbone)?
        .into_iter()
        .find(|(n, _)| n.ends_with("ChipAlign"))
        .expect("ChipAlign variant")
        .1;

    // A benchmark triplet plus the RAG pipeline over the documentation.
    let bench = OpenRoadBenchmark::generate(7);
    let retriever =
        Retriever::build(Chunker::default().chunk_all(&OpenRoadBenchmark::corpus_documents()));
    let triplet = &bench.triplets[0];
    let rag_context = retriever.retrieve_context(&triplet.question, 2);
    println!("\nquestion      : {}", triplet.question);
    println!("directive     : {:?}", triplet.tags[0].tag_str());
    println!("golden        : {}", triplet.golden);
    println!("rag context   : {rag_context}");

    for (name, model) in [
        ("instruct", &instruct),
        ("eda", &eda),
        ("chipalign", &chipalign),
    ] {
        let answer = respond(model, &triplet.prompt_with_context(&rag_context))?;
        let score = rouge_l(&answer, &triplet.golden).f1;
        println!("{name:<10} (rouge {score:.3}): {answer}");
    }
    println!("\n(smoke-scale models babble; the mechanism and plumbing are the point here)");
    Ok(())
}

//! Quickstart: merge two conformable checkpoints with ChipAlign's geodesic
//! interpolation and inspect the per-layer geometry report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chipalign::merge::{GeodesicMerge, Merger, ModelSoup};
use chipalign::model::{ArchSpec, Checkpoint};
use chipalign::tensor::rng::Pcg32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two specialists with the same architecture (the paper's
    // conformability assumption). In a real workflow these come from
    // chipalign::model::format::load("chip.calt") etc.
    let arch = ArchSpec {
        name: "quickstart".into(),
        vocab_size: 99,
        d_model: 64,
        n_layers: 2,
        n_heads: 4,
        d_ff: 128,
        max_seq_len: 128,
    };
    let chip = Checkpoint::random(&arch, &mut Pcg32::seed(1));
    let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(2));
    println!(
        "inputs: {} parameters each, conformable = {}",
        chip.scalar_count(),
        chip.conformable_with(&instruct)
    );

    // The paper's method at its recommended λ = 0.6.
    let merger = GeodesicMerge::recommended();
    let (merged, report) = merger.merge_with_report(&chip, &instruct)?;
    println!(
        "\nChipAlign merge: mean geodesic angle {:.4} rad over {} tensors ({} lerp fallbacks)",
        report.mean_angle(),
        report.tensors.len(),
        report.fallback_count()
    );
    if let Some(worst) = report.max_angle() {
        println!(
            "largest angle: {} at {:.4} rad (|chip| {:.3}, |instruct| {:.3}, |merged| {:.3})",
            worst.name, worst.theta, worst.norm_chip, worst.norm_instruct, worst.norm_merged
        );
    }
    println!("merged model norm: {:.4}", merged.global_norm());

    // Contrast with naive averaging: the soup's norms collapse toward the
    // chord, the geodesic merge stays on the manifold.
    let soup = ModelSoup::new().merge_pair(&chip, &instruct)?;
    println!("model-soup norm:   {:.4} (chord shrinkage)", soup.global_norm());
    println!(
        "input norms:       {:.4} / {:.4}",
        chip.global_norm(),
        instruct.global_norm()
    );
    Ok(())
}

//! Serving demo: stand up the continuous-batching server on an ephemeral
//! port, hot-load a λ=0.6 geodesic merge of two smoke-quality zoo models,
//! and fan four concurrent clients at it.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! Everything runs in-process; the same wire protocol works across
//! machines by binding a routable address in [`ServerConfig`].

use chipalign::pipeline::zoo::{Quality, Zoo, ZooConfig};
use chipalign::serve::{
    Client, GenerateRequest, ModelRegistry, SchedulerConfig, Server, ServerConfig,
};

const SPEC: &str = "merge:eda-qwen+instruct-qwen@0.6";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Smoke quality trains each ingredient in seconds; swap in
    // Quality::Paper and a cache_dir of artifacts/zoo for the real models.
    let zoo = Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed: 2025,
        cache_dir: None,
    })?;
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 4,
                max_sessions: 16,
                slice_tokens: 8,
                stall_slices: 32,
                max_batch: 4,
                ..SchedulerConfig::default()
            },
            max_new_tokens_cap: 128,
            default_deadline_ms: Some(60_000),
            instance_tag: None,
        },
        ModelRegistry::new(zoo),
    )?;
    let addr = server.local_addr();
    println!("serving on {addr}");

    // Hot-load the paper's deliverable: the λ=0.6 geodesic merge. This
    // trains both ingredients and materializes the merge; later requests
    // hit the warm cache. Changing λ is just another load — no restart.
    let mut admin = Client::connect(addr)?;
    let key = admin.load(SPEC)?;
    println!("materialized {key}");

    let questions = [
        "Q:what is clock domain crossing?;A:",
        "Q:how do I fix a setup violation?;A:",
        "Q:what does the CTS stage do?;A:",
        "Q:why is IR drop bad?;A:",
    ];
    let handles: Vec<_> = questions
        .iter()
        .map(|q| {
            let q = (*q).to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr)?;
                let generation = client.generate(GenerateRequest::greedy(SPEC, &q, 48))?;
                Ok::<_, chipalign::serve::ServeError>((q, generation))
            })
        })
        .collect();
    for h in handles {
        let (q, generation) = h.join().expect("client thread")?;
        println!(
            "[{} tok, {} ms] {q} -> {}",
            generation.tokens, generation.latency_ms, generation.text
        );
    }

    let metrics = admin.metrics()?;
    println!(
        "served {} generations, {:.1} tokens/sec, p95 latency {:.1} ms",
        metrics.completed, metrics.tokens_per_sec, metrics.latency_p95_ms
    );
    server.shutdown();
    Ok(())
}

#!/usr/bin/env bash
# The tier-1 gate: build, tests, and lints for the whole workspace.
# Run before every merge; CHIPALIGN_QUALITY=smoke keeps zoo-training
# tests at seconds-scale.
set -euo pipefail
cd "$(dirname "$0")/.."

export CHIPALIGN_QUALITY="${CHIPALIGN_QUALITY:-smoke}"

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: build + tests + clippy all green"

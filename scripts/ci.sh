#!/usr/bin/env bash
# The tier-1 gate: build, tests, and lints for the whole workspace.
# Run before every merge; CHIPALIGN_QUALITY=smoke keeps zoo-training
# tests at seconds-scale.
set -euo pipefail
cd "$(dirname "$0")/.."

export CHIPALIGN_QUALITY="${CHIPALIGN_QUALITY:-smoke}"

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Chaos suites: deterministic fault injection behind the fault-inject
# feature (never part of release builds), plus a lint pass over the
# feature-gated code paths. The router's fleet chaos suite kills whole
# replicas mid-decode and asserts transcripts survive failover.
cargo test -q -p chipalign-serve --features fault-inject
cargo clippy -p chipalign-serve --all-targets --features fault-inject -- -D warnings
cargo test -q -p chipalign-router --features fault-inject
cargo clippy -p chipalign-router --all-targets --features fault-inject -- -D warnings

# Kernel layer: the tensor, model, nn, and serve crates stay clippy-clean
# at -D warnings, and the kernel + batch + prefill + kvpool micro-benches
# must run end to end (smoke shapes, no JSON).
cargo clippy -p chipalign-tensor -- -D warnings
cargo clippy -p chipalign-model -- -D warnings
cargo clippy -p chipalign-nn -- -D warnings
cargo clippy -p chipalign-serve -- -D warnings
cargo clippy -p chipalign-router -- -D warnings
cargo run --release -p chipalign-bench --bin bench_kernels -- --smoke

# Backend × dtype sweep: bench_kernels times every tier directly, but the
# routed kernels (Matrix::matvec, decode_step) follow the process-wide
# selection, so pin each tier once. The simd run degrades to
# "simd(blocked-fallback)" on machines without AVX2+FMA — still a valid
# smoke of the dispatch path. One native-codegen run catches UB or
# miscompiles that only surface when LLVM is allowed to auto-vectorize
# for the host.
for backend in scalar blocked simd; do
  CHIPALIGN_BACKEND="$backend" \
    cargo run --release -p chipalign-bench --bin bench_kernels -- --smoke
done
RUSTFLAGS="-C target-cpu=native" \
  cargo run --release -p chipalign-bench --bin bench_kernels -- --smoke
cargo run --release -p chipalign-bench --bin bench_batch -- --smoke
cargo run --release -p chipalign-bench --bin bench_prefill -- --smoke

# KV dtype × backend sweep: the paged-pool smoke must hold for both KV
# dtypes under both the scalar oracle and the SIMD tier (the quantized
# row primitives have per-tier implementations; simd degrades to the
# blocked fallback off-AVX2, which is still a valid dispatch smoke).
# The default run (no --dtype) covers both lanes together and asserts
# the int8-over-f32 sessions-per-GB floor.
cargo run --release -p chipalign-bench --bin bench_kvpool -- --smoke
for dtype in f32 int8; do
  for backend in scalar simd; do
    CHIPALIGN_BACKEND="$backend" \
      cargo run --release -p chipalign-bench --bin bench_kvpool -- --smoke --dtype "$dtype"
  done
done
cargo run --release -p chipalign-bench --bin bench_serve -- --smoke
cargo run --release -p chipalign-bench --bin bench_fleet -- --smoke

# Speculative decoding smoke: k ∈ {2,4} over the merge-family draft and
# the truncated self-draft; the binary itself asserts speculative
# transcripts byte-identical to plain decode and acceptance > 0.
cargo run --release -p chipalign-bench --bin bench_spec -- --smoke

echo "ci: build + tests + chaos + clippy + backend-matrix + perf-binary smoke runs all green"

#!/usr/bin/env bash
# Regenerates every paper table and figure in sequence.
# The model zoo is trained on first use and cached under artifacts/zoo/,
# so reruns are evaluation-only. Total cold time: ~40-60 min on one core.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p chipalign-bench
B=target/release
$B/table1_openroad_qa
$B/table3_ifeval
$B/table2_industrial_qa
$B/fig7_multichoice
$B/fig8_lambda_sweep --ablate
$B/fig2_radar
$B/fig5_qualitative
$B/fig6_qualitative
echo "all experiments done; JSON artifacts in artifacts/results/"

//! `chipalign-cli` — merge, inspect, diff, and sweep checkpoints from the
//! command line.
//!
//! ```text
//! chipalign-cli info  model.calt
//! chipalign-cli diff  a.calt b.calt
//! chipalign-cli merge --chip chip.calt --instruct chat.calt \
//!                     [--lambda 0.6] [--method chipalign|soup|ta|ties|della|dare] \
//!                     [--base base.calt] -o merged.calt
//! chipalign-cli sweep --chip chip.calt --instruct chat.calt --steps 11 -o dir/
//! ```
//!
//! The task-vector methods (`ta`, `ties`, `della`, `dare`) require
//! `--base`, the common ancestor checkpoint.

use std::path::PathBuf;
use std::process::ExitCode;

use chipalign::merge::{
    sweep, Dare, Della, GeodesicMerge, MergeError, Merger, ModelSoup, TaskArithmetic, Ties,
};
use chipalign::model::{diff::CheckpointDiff, format, Checkpoint, ModelError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  chipalign-cli info  <model.calt>
  chipalign-cli diff  <a.calt> <b.calt>
  chipalign-cli merge --chip <c.calt> --instruct <i.calt> [--lambda 0.6]
                      [--method chipalign|slerp|soup|ta|ties|della|dare]
                      [--base <base.calt>] -o <out.calt>
  chipalign-cli sweep --chip <c.calt> --instruct <i.calt> [--steps 11] -o <dir>";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("no subcommand given".to_string()),
    }
}

fn load(path: &str) -> Result<Checkpoint, String> {
    format::load(path).map_err(|e: ModelError| format!("loading {path}: {e}"))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info takes exactly one checkpoint path".to_string());
    };
    let ckpt = load(path)?;
    println!("architecture : {}", ckpt.arch());
    println!("parameters   : {} tensors, {} scalars", ckpt.param_count(), ckpt.scalar_count());
    println!("global norm  : {:.4}", ckpt.global_norm());
    println!("finite       : {}", ckpt.all_finite());
    if !ckpt.metadata().is_empty() {
        println!("metadata     :");
        for (k, v) in ckpt.metadata() {
            println!("  {k} = {v}");
        }
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let [a_path, b_path] = args else {
        return Err("diff takes exactly two checkpoint paths".to_string());
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    let d = CheckpointDiff::between(&a, &b).map_err(|e| e.to_string())?;
    println!(
        "global delta {:.4} (relative {:.4}), mean cosine {:.4}",
        d.global_delta,
        d.global_relative,
        d.mean_cosine()
    );
    println!("most changed tensors:");
    for t in d.most_changed(8) {
        println!(
            "  {:<50} rel {:.4}  cos {:.4}",
            t.name, t.relative_delta, t.cosine
        );
    }
    Ok(())
}

/// Minimal flag parser: `--key value` pairs plus `-o value`.
fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut flags = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let name = key
            .strip_prefix("--")
            .or_else(|| key.strip_prefix('-'))
            .ok_or_else(|| format!("expected a flag, got `{key}`"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag `{key}` needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let chip = load(flags.get("chip").ok_or("--chip is required")?)?;
    let instruct = load(flags.get("instruct").ok_or("--instruct is required")?)?;
    let out = flags.get("o").or(flags.get("out")).ok_or("-o is required")?;
    let lambda: f32 = flags
        .get("lambda")
        .map_or(Ok(0.6), |s| s.parse().map_err(|_| "bad --lambda"))?;
    let method = flags.get("method").map_or("chipalign", String::as_str);

    let base = || -> Result<Checkpoint, String> {
        load(
            flags
                .get("base")
                .ok_or("this method requires --base (the common ancestor)")?,
        )
    };
    let merger: Box<dyn Merger> = match method {
        "chipalign" => Box::new(GeodesicMerge::new(lambda).map_err(err)?),
        "slerp" => Box::new(GeodesicMerge::raw_slerp(lambda).map_err(err)?),
        "soup" => Box::new(ModelSoup::new()),
        "ta" => Box::new(TaskArithmetic::new(base()?, 0.8).map_err(err)?),
        "ties" => Box::new(Ties::recommended(base()?).map_err(err)?),
        "della" => Box::new(Della::recommended(base()?, 7).map_err(err)?),
        "dare" => Box::new(Dare::recommended(base()?, 7).map_err(err)?),
        other => return Err(format!("unknown method `{other}`")),
    };

    let merged = merger.merge_pair(&chip, &instruct).map_err(err)?;
    format::save(&merged, out).map_err(|e| e.to_string())?;
    println!(
        "{} merged -> {out} ({} scalars, norm {:.4})",
        merger.name(),
        merged.scalar_count(),
        merged.global_norm()
    );
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let chip = load(flags.get("chip").ok_or("--chip is required")?)?;
    let instruct = load(flags.get("instruct").ok_or("--instruct is required")?)?;
    let out_dir = PathBuf::from(flags.get("o").or(flags.get("out")).ok_or("-o is required")?);
    let steps: usize = flags
        .get("steps")
        .map_or(Ok(11), |s| s.parse().map_err(|_| "bad --steps"))?;
    if steps < 2 {
        return Err("--steps must be at least 2".to_string());
    }
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let points =
        sweep::lambda_sweep(&chip, &instruct, &sweep::lambda_grid(steps)).map_err(err)?;
    for p in points {
        let path = out_dir.join(format!("lambda-{:.2}.calt", p.lambda));
        format::save(&p.model, &path).map_err(|e| e.to_string())?;
        println!("lambda {:.2} -> {} (norm {:.4})", p.lambda, path.display(), p.model.global_norm());
    }
    Ok(())
}

fn err(e: MergeError) -> String {
    e.to_string()
}

//! # ChipAlign — a full-stack Rust reproduction
//!
//! Reproduction of *ChipAlign: Instruction Alignment in Large Language
//! Models for Chip Design via Geodesic Interpolation* (DAC 2025), including
//! every substrate the paper depends on, built from scratch:
//!
//! * [`tensor`] — dense matrix math, deterministic RNG.
//! * [`nn`] — a tiny LLaMA-style transformer with manual backprop, Adam,
//!   LoRA, KV-cached decoding, and likelihood scoring.
//! * [`model`] — named-tensor checkpoints and a binary checkpoint format.
//! * [`merge`] — **the paper's contribution**: geodesic (SLERP-on-the-
//!   Frobenius-sphere) weight interpolation, plus the Model Soup, Task
//!   Arithmetic, TIES, and DELLA baselines.
//! * [`eval`] — ROUGE-L, BLEU, IFEval-style verifiable instruction
//!   checking, and a deterministic rubric grader.
//! * [`rag`] — BM25 + hashed-TF-IDF retrieval with reciprocal-rank fusion.
//! * [`data`] — synthetic EDA corpora and the four benchmarks (OpenROAD
//!   QA, industrial chip QA, IFEval, multi-choice chip QA).
//! * [`pipeline`] — the model zoo and one experiment runner per paper
//!   table/figure.
//! * [`serve`] — a continuous-batching TCP inference server with
//!   hot-swappable geodesic merges (`merge:<chip>+<instruct>@<λ>` specs),
//!   admission control, and wire-queryable metrics.
//!
//! # Quickstart
//!
//! ```
//! use chipalign::merge::{GeodesicMerge, Merger};
//! use chipalign::model::{ArchSpec, Checkpoint};
//! use chipalign::tensor::rng::Pcg32;
//!
//! # fn main() -> Result<(), chipalign::merge::MergeError> {
//! let arch = ArchSpec::tiny("demo");
//! let chip = Checkpoint::random(&arch, &mut Pcg32::seed(1));
//! let instruct = Checkpoint::random(&arch, &mut Pcg32::seed(2));
//! let merged = GeodesicMerge::new(0.6)?.merge_pair(&chip, &instruct)?;
//! assert!(merged.all_finite());
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the experiment index and
//! `cargo run --release -p chipalign-bench --bin table1_openroad_qa` (and
//! siblings) for regenerating the paper's tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use chipalign_data as data;
pub use chipalign_eval as eval;
pub use chipalign_merge as merge;
pub use chipalign_model as model;
pub use chipalign_nn as nn;
pub use chipalign_pipeline as pipeline;
pub use chipalign_rag as rag;
pub use chipalign_serve as serve;
pub use chipalign_tensor as tensor;

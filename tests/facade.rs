//! Cross-crate integration through the `chipalign` facade: checkpoints
//! flow from the transformer substrate through serialization into every
//! merging method and back into a runnable model.

use chipalign::merge::{
    sweep, Della, GeodesicMerge, Merger, ModelSoup, TaskArithmetic, Ties,
};
use chipalign::model::{format, ArchSpec};
use chipalign::nn::TinyLm;
use chipalign::tensor::rng::Pcg32;

fn arch() -> ArchSpec {
    ArchSpec {
        name: "facade".into(),
        vocab_size: 99,
        d_model: 16,
        n_layers: 2,
        n_heads: 2,
        d_ff: 32,
        max_seq_len: 64,
    }
}

#[test]
fn trained_models_round_trip_through_serialization_and_merge() {
    // Train two tiny specialists from a common base.
    let base = TinyLm::new(&arch(), &mut Pcg32::seed(1)).expect("valid arch");
    let mk_specialist = |seq: &[u32], seed: u64| -> TinyLm {
        let mut m = base.clone();
        let data = vec![chipalign::nn::train::Example::pretrain(seq.to_vec())];
        chipalign::nn::train::train(
            &mut m,
            &data,
            &chipalign::nn::train::TrainConfig {
                steps: 40,
                batch_size: 2,
                adam: chipalign::nn::AdamConfig {
                    lr: 2e-3,
                    ..Default::default()
                },
                seed,
            },
        )
        .expect("training succeeds");
        m
    };
    let chip = mk_specialist(&[10, 20, 30, 40, 50], 2);
    let instruct = mk_specialist(&[60, 61, 62, 63, 64], 3);

    // Serialize through the binary format.
    let dir = std::env::temp_dir().join("chipalign-facade-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let chip_path = dir.join("chip.calt");
    format::save(&chip.to_checkpoint().expect("ok"), &chip_path).expect("save");
    let chip_ckpt = format::load(&chip_path).expect("load");
    let instruct_ckpt = instruct.to_checkpoint().expect("ok");

    // Every merging method produces a valid, runnable model.
    let base_ckpt = base.to_checkpoint().expect("ok");
    let mergers: Vec<Box<dyn Merger>> = vec![
        Box::new(GeodesicMerge::recommended()),
        Box::new(ModelSoup::new()),
        Box::new(TaskArithmetic::new(base_ckpt.clone(), 1.0).expect("ok")),
        Box::new(Ties::recommended(base_ckpt.clone()).expect("ok")),
        Box::new(Della::recommended(base_ckpt, 5).expect("ok")),
    ];
    for merger in &mergers {
        let merged = merger
            .merge_pair(&chip_ckpt, &instruct_ckpt)
            .unwrap_or_else(|e| panic!("{} failed: {e}", merger.name()));
        merged.validate().expect("merged checkpoint validates");
        assert!(merged.all_finite(), "{} produced non-finite weights", merger.name());
        let model = TinyLm::from_checkpoint(&merged).expect("runnable");
        let logits = model.logits(&[1, 10, 60]).expect("forward works");
        assert!(logits.all_finite(), "{} model produced NaNs", merger.name());
    }
    std::fs::remove_file(&chip_path).ok();
}

#[test]
fn lambda_sweep_interpolates_between_trained_specialists() {
    let base = TinyLm::new(&arch(), &mut Pcg32::seed(9)).expect("valid arch");
    let chip_ckpt = base
        .to_checkpoint()
        .expect("ok")
        .map_tensors(|_, t| t.scale(1.2));
    let instruct_ckpt = base.to_checkpoint().expect("ok");
    let points =
        sweep::lambda_sweep(&chip_ckpt, &instruct_ckpt, &sweep::lambda_grid(5)).expect("ok");
    assert_eq!(points.len(), 5);
    assert!(points[0].model.approx_eq(&instruct_ckpt, 1e-5));
    assert!(points[4].model.approx_eq(&chip_ckpt, 1e-5));
    // Norms increase monotonically for a pure-scaling pair.
    for w in points.windows(2) {
        assert!(w[1].model.global_norm() > w[0].model.global_norm());
    }
}

#[test]
fn benchmarks_and_metrics_compose() {
    use chipalign::data::openroad::OpenRoadBenchmark;
    use chipalign::eval::rouge::rouge_l;
    use chipalign::rag::{Chunker, Retriever};

    let bench = OpenRoadBenchmark::generate(123);
    let retriever = Retriever::build(
        Chunker::default().chunk_all(&OpenRoadBenchmark::corpus_documents()),
    );
    // RAG retrieval finds the golden fact for most questions.
    let mut hits = 0;
    for t in &bench.triplets {
        let ctx = retriever.retrieve_context(&t.question, 2);
        if ctx.contains(&t.fact_name) {
            hits += 1;
        }
    }
    assert!(
        hits * 10 >= bench.triplets.len() * 8,
        "retrieval should find >=80% of facts, got {hits}/{}",
        bench.triplets.len()
    );
    // Golden answers score 1.0 against themselves and low against others.
    let t0 = &bench.triplets[0];
    assert!(rouge_l(&t0.golden, &t0.golden).f1 > 0.999);
}

#[test]
fn ifeval_and_grader_compose_with_tags() {
    use chipalign::data::ifeval_bench;
    use chipalign::eval::grader::Rubric;
    use chipalign::eval::ifeval::{aggregate, PromptVerdict};

    let prompts = ifeval_bench::generate(5);
    // A perfect responder (echoing the reference) aces the benchmark.
    let verdicts: Vec<PromptVerdict> = prompts
        .iter()
        .map(|p| PromptVerdict::of(&p.instructions, &p.reference))
        .collect();
    let report = aggregate(&verdicts);
    assert_eq!(report.prompt_strict, 1.0);
    assert_eq!(report.n_prompts, 541);

    // The grader rewards the reference answer.
    let p = &prompts[0];
    let grade = Rubric::default().grade(&p.reference, &p.reference, "", &p.instructions);
    assert_eq!(grade.score, 100);
}

//! Paper-shape assertions at full (paper) training quality.
//!
//! These tests train (or load from `artifacts/zoo/`) the paper-quality
//! model zoo and assert the *qualitative* results the paper reports — the
//! capability split and its recovery by merging. They take minutes on a
//! cold cache, so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test paper_shape -- --ignored --test-threads 1
//! ```

use chipalign::data::ifeval_bench;
use chipalign::pipeline::experiments::openroad::{ContextMode, OpenRoadEval};
use chipalign::pipeline::experiments::{ifeval, merged_variants};
use chipalign::pipeline::zoo::{Backbone, Quality, Zoo, ZooConfig, ZooModel};

fn paper_zoo() -> Zoo {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("artifacts/zoo");
    Zoo::new(ZooConfig {
        quality: Quality::Paper,
        seed: 2025,
        cache_dir: Some(dir),
    })
    .expect("zoo builds")
}

#[test]
#[ignore = "trains the paper-quality zoo (minutes); run with --ignored"]
fn daft_costs_instruction_alignment_and_chipalign_recovers_domain_skill() {
    let zoo = paper_zoo();
    let backbone = Backbone::LlamaTiny;
    let instruct = zoo.model(ZooModel::Instruct(backbone)).expect("trains");
    let eda = zoo.model(ZooModel::Eda(backbone)).expect("trains");
    let chipalign = merged_variants(&zoo, backbone)
        .expect("merges")
        .into_iter()
        .find(|(n, _)| n.ends_with("ChipAlign"))
        .expect("present")
        .1;

    // IFEval: instruct >> eda (the paper's alignment-loss finding), and
    // the merge recovers a meaningful share of the gap.
    let prompts = ifeval_bench::generate(2025);
    let subset = &prompts[..150];
    let r_instruct = ifeval::eval_subset(&instruct, subset).expect("runs");
    let r_eda = ifeval::eval_subset(&eda, subset).expect("runs");
    let r_merged = ifeval::eval_subset(&chipalign, subset).expect("runs");
    assert!(
        r_instruct.prompt_strict > r_eda.prompt_strict + 0.1,
        "DAFT must cost alignment: instruct {} vs eda {}",
        r_instruct.prompt_strict,
        r_eda.prompt_strict
    );
    assert!(
        r_merged.prompt_strict > r_eda.prompt_strict,
        "merging must recover alignment: merged {} vs eda {}",
        r_merged.prompt_strict,
        r_eda.prompt_strict
    );

    // OpenROAD QA (golden context): eda > instruct (domain adaptation
    // pays), and the merged model beats the instruct parent.
    let eval = OpenRoadEval::new(2025);
    let triplets = &eval.triplets()[..40];
    let s_instruct = eval
        .eval_subset(&instruct, triplets, ContextMode::Golden)
        .expect("runs");
    let s_eda = eval
        .eval_subset(&eda, triplets, ContextMode::Golden)
        .expect("runs");
    let s_merged = eval
        .eval_subset(&chipalign, triplets, ContextMode::Golden)
        .expect("runs");
    assert!(
        s_eda.all > s_instruct.all,
        "domain DAFT must pay on the domain benchmark: eda {} vs instruct {}",
        s_eda.all,
        s_instruct.all
    );
    assert!(
        s_merged.all > s_instruct.all,
        "the merge must not collapse to the instruct parent: merged {} vs instruct {}",
        s_merged.all,
        s_instruct.all
    );
}

#[test]
#[ignore = "trains the paper-quality zoo (minutes); run with --ignored"]
fn lambda_extremes_reproduce_parents_on_benchmarks() {
    use chipalign::merge::{GeodesicMerge, Merger};
    use chipalign::nn::TinyLm;

    let zoo = paper_zoo();
    let backbone = Backbone::LlamaTiny;
    let instruct = zoo.model(ZooModel::Instruct(backbone)).expect("trains");
    let eda = zoo.model(ZooModel::Eda(backbone)).expect("trains");
    let eval = OpenRoadEval::new(2025);
    let triplets = &eval.triplets()[..20];

    for (lambda, parent) in [(0.0f32, &instruct), (1.0f32, &eda)] {
        let merged = GeodesicMerge::new(lambda)
            .expect("valid")
            .merge_pair(
                &eda.to_checkpoint().expect("ok"),
                &instruct.to_checkpoint().expect("ok"),
            )
            .expect("merges");
        let model = TinyLm::from_checkpoint(&merged).expect("runnable");
        let a = eval
            .eval_subset(&model, triplets, ContextMode::Golden)
            .expect("runs");
        let b = eval
            .eval_subset(parent, triplets, ContextMode::Golden)
            .expect("runs");
        assert!(
            (a.all - b.all).abs() < 1e-6,
            "λ={lambda} must equal its parent: {} vs {}",
            a.all,
            b.all
        );
    }
}

//! Smoke-scale end-to-end pipeline test: the zoo trains, the merged
//! variants build, and every experiment runner produces well-formed output
//! on benchmark subsets.
//!
//! Model *quality* is not asserted here (smoke models are deliberately
//! undertrained); the paper-shape assertions live in EXPERIMENTS.md and the
//! bench binaries.

use chipalign::data::ifeval_bench;
use chipalign::data::industrial::IndustrialBenchmark;
use chipalign::data::multichoice;
use chipalign::pipeline::experiments::openroad::{ContextMode, OpenRoadEval};
use chipalign::pipeline::experiments::{
    ifeval, industrial, merged_variants, multichoice as mc, qualitative,
};
use chipalign::pipeline::zoo::{Backbone, Quality, Zoo, ZooConfig, ZooModel};

fn smoke_zoo() -> Zoo {
    Zoo::new(ZooConfig {
        quality: Quality::Smoke,
        seed: 11,
        cache_dir: None,
    })
    .expect("zoo builds")
}

#[test]
fn zoo_trains_and_merges_end_to_end() {
    let zoo = smoke_zoo();
    let variants = merged_variants(&zoo, Backbone::LlamaTiny).expect("variants build");
    assert_eq!(variants.len(), 5, "TA, TIES, DELLA, Soup, ChipAlign");
    let names: Vec<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.iter().any(|n| n.ends_with("ChipAlign")));
    for (name, model) in &variants {
        let ckpt = model.to_checkpoint().expect("exportable");
        assert!(ckpt.all_finite(), "{name} has non-finite weights");
    }

    // OpenROAD eval on a small subset, both context modes.
    let eval = OpenRoadEval::new(11);
    let subset = &eval.triplets()[..6];
    let instruct = zoo.model(ZooModel::Instruct(Backbone::LlamaTiny)).expect("ok");
    for mode in [ContextMode::Golden, ContextMode::Rag] {
        let scores = eval.eval_subset(&instruct, subset, mode).expect("eval runs");
        assert!(
            (0.0..=1.0).contains(&scores.all),
            "rouge must be a fraction, got {}",
            scores.all
        );
    }
}

#[test]
fn ifeval_and_multichoice_runners_produce_valid_reports() {
    let zoo = smoke_zoo();
    let model = zoo.model(ZooModel::Instruct(Backbone::LlamaTiny)).expect("ok");

    let prompts = ifeval_bench::generate(11);
    let report = ifeval::eval_subset(&model, &prompts[..12]).expect("runs");
    assert_eq!(report.n_prompts, 12);
    assert!(report.prompt_loose >= report.prompt_strict);
    assert!(report.instruction_loose >= report.instruction_strict);

    let items = multichoice::generate(11);
    let scores = mc::eval_subset(&model, &items[..8]).expect("runs");
    assert!((0.0..=1.0).contains(&scores.mean));
    assert_eq!(scores.per_domain.len(), 3);
}

#[test]
fn industrial_runner_grades_both_turns() {
    let zoo = smoke_zoo();
    let model = zoo.model(ZooModel::ChipNemo).expect("ok");
    let bench = IndustrialBenchmark::generate(11);
    let scores = industrial::eval_subset(&model, &bench.questions[..4]).expect("runs");
    assert!((0.0..=100.0).contains(&scores.single_all));
    assert!((0.0..=100.0).contains(&scores.multi_all));
    assert_eq!(scores.single.len(), 4);
}

#[test]
fn qualitative_comparisons_render() {
    let zoo = smoke_zoo();
    let comparison = qualitative::fig5(&zoo, 11).expect("fig5 builds");
    assert_eq!(comparison.responses.len(), 3);
    let text = comparison.render();
    assert!(text.contains("PROMPT"));
    assert!(text.contains("ChipAlign"));
}

#[test]
fn zoo_disk_cache_round_trips() {
    let dir = std::env::temp_dir().join("chipalign-zoo-cache-test");
    std::fs::remove_dir_all(&dir).ok();
    let mk = || {
        Zoo::new(ZooConfig {
            quality: Quality::Smoke,
            seed: 21,
            cache_dir: Some(dir.clone()),
        })
        .expect("zoo builds")
    };
    let zoo1 = mk();
    let trained = zoo1
        .model(ZooModel::Base(Backbone::LlamaTiny))
        .expect("trains");
    // A fresh zoo instance must load the identical model from disk.
    let zoo2 = mk();
    let loaded = zoo2
        .model(ZooModel::Base(Backbone::LlamaTiny))
        .expect("loads");
    assert!(trained
        .to_checkpoint()
        .expect("ok")
        .approx_eq(&loaded.to_checkpoint().expect("ok"), 0.0));
    std::fs::remove_dir_all(&dir).ok();
}
